#include "serve/client.hpp"

#include "telemetry/trace_context.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

namespace cubie::serve {

namespace {
using Clock = std::chrono::steady_clock;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
  }
  return *this;
}

std::vector<Endpoint> parse_endpoints(const std::string& spec) {
  std::vector<Endpoint> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const bool all_digits =
        std::all_of(entry.begin(), entry.end(),
                    [](unsigned char c) { return c >= '0' && c <= '9'; });
    Endpoint ep;
    if (all_digits)
      ep.tcp_port = std::atoi(entry.c_str());
    else
      ep.socket_path = entry;
    out.push_back(std::move(ep));
  }
  return out;
}

std::string endpoint_name(const Endpoint& ep) {
  return !ep.socket_path.empty()
             ? "unix:" + ep.socket_path
             : "tcp:127.0.0.1:" + std::to_string(ep.tcp_port);
}

std::optional<Client> Client::connect(const Endpoint& ep,
                                      std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Client> {
    if (error) *error = msg + ": " + std::strerror(errno);
    return std::nullopt;
  };
  int fd = -1;
  if (!ep.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.socket_path.size() >= sizeof(addr.sun_path)) {
      if (error) *error = "socket path too long: " + ep.socket_path;
      return std::nullopt;
    }
    std::strncpy(addr.sun_path, ep.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return fail("connect " + ep.socket_path);
    }
  } else {
    if (ep.tcp_port < 0) {
      if (error) *error = "no endpoint: set socket_path or tcp_port";
      return std::nullopt;
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.tcp_port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return fail("connect 127.0.0.1:" + std::to_string(ep.tcp_port));
    }
  }
  Client c;
  c.fd_ = fd;
  return c;
}

std::optional<Client> Client::connect_first(
    const std::vector<Endpoint>& endpoints, std::string* error,
    std::size_t* index) {
  std::string all_errors;
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    std::string err;
    auto c = connect(endpoints[i], &err);
    if (c) {
      // Connected is not healthy: a draining daemon still accepts the
      // TCP handshake. One ping settles it.
      Request ping;
      ping.id = "probe";
      ping.cmd = Cmd::Ping;
      const auto resp = c->call(ping, &err);
      bool ok = false;
      if (resp) {
        const report::Json* okj = resp->find("ok");
        ok = okj != nullptr && okj->is_bool() && okj->as_bool();
      }
      if (ok) {
        if (index) *index = i;
        return c;
      }
      if (err.empty()) err = "ping rejected";
    }
    if (!all_errors.empty()) all_errors += "; ";
    all_errors += endpoint_name(endpoints[i]) + ": " + err;
  }
  if (error)
    *error = endpoints.empty() ? "no endpoints given" : all_errors;
  return std::nullopt;
}

bool Client::send_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::recv_line() {
  for (;;) {
    const std::size_t pos = buf_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buf_.substr(0, pos);
      buf_.erase(0, pos + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<report::Json> Client::call(const Request& r,
                                         std::string* error) {
  if (!send_line(request_to_json(r).dump(-1))) {
    if (error) *error = "send failed: " + std::string(std::strerror(errno));
    return std::nullopt;
  }
  auto line = recv_line();
  if (!line) {
    if (error) *error = "connection closed before a response arrived";
    return std::nullopt;
  }
  std::string parse_err;
  auto j = report::Json::parse(*line, &parse_err);
  if (!j) {
    if (error) *error = "unparseable response: " + parse_err;
    return std::nullopt;
  }
  return j;
}

// ---------------------------------------------------------------------------
// Load generator.

double LoadgenResult::req_per_s() const {
  return wall_s > 0 ? static_cast<double>(completed) / wall_s : 0.0;
}

double LoadgenResult::percentile_ms(double q) const {
  if (latencies_ms.empty()) return 0.0;
  const std::size_t n = latencies_ms.size();
  if (n == 1) return latencies_ms[0];
  q = std::min(100.0, std::max(0.0, q));
  // Linear interpolation between closest ranks (numpy/type-7): the
  // fractional position h lies between floor(h) and floor(h)+1.
  const double h = (static_cast<double>(n) - 1.0) * q / 100.0;
  const std::size_t lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - static_cast<double>(lo);
  return latencies_ms[lo] + frac * (latencies_ms[hi] - latencies_ms[lo]);
}

telemetry::HistogramSnapshot LoadgenResult::latency_histogram() const {
  telemetry::Histogram h(telemetry::latency_bucket_bounds());
  for (double ms : latencies_ms) h.observe(ms / 1e3);
  return h.snapshot();
}

bool run_loadgen(const LoadgenOptions& opts, LoadgenResult& out,
                 std::string* error) {
  const int concurrency = std::max(1, opts.concurrency);
  const int total = std::max(0, opts.requests);
  if (opts.mix.empty()) {
    if (error) *error = "empty request mix";
    return false;
  }

  // Connect every worker up front so a dead server fails fast instead of
  // counting as N transport errors.
  std::vector<Client> clients;
  clients.reserve(static_cast<std::size_t>(concurrency));
  for (int i = 0; i < concurrency; ++i) {
    auto c = Client::connect(opts.endpoint, error);
    if (!c) return false;
    clients.push_back(std::move(*c));
  }

  struct ThreadTally {
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t transport_errors = 0;
    std::size_t trace_mismatches = 0;
    std::vector<std::pair<std::string, std::size_t>> by_code;
    std::vector<double> latencies_ms;
  };
  std::vector<ThreadTally> tallies(static_cast<std::size_t>(concurrency));
  std::atomic<int> next{0};

  auto fire = [&](int ti) {
    Client& client = clients[static_cast<std::size_t>(ti)];
    ThreadTally& tally = tallies[static_cast<std::size_t>(ti)];
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      Request req = opts.mix[static_cast<std::size_t>(i) % opts.mix.size()];
      req.id = "lg-" + std::to_string(i);
      if (opts.deadline_ms > 0) req.deadline_ms = opts.deadline_ms;
      // Cubie-Flight: a fresh trace id per request, so every telemetry
      // event the daemon emits for it correlates back to exactly one
      // loadgen request (tested end-to-end by the CI flight job).
      if (opts.trace) req.trace = telemetry::generate_trace_id();
      const auto t0 = Clock::now();
      auto resp = client.call(req, nullptr);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      if (!resp) {
        ++tally.transport_errors;
        return;  // this connection is dead; let the others finish
      }
      if (opts.trace) {
        const report::Json* echo = resp->find("trace");
        if (echo == nullptr || !echo->is_string() ||
            echo->as_string() != req.trace)
          ++tally.trace_mismatches;
      }
      const report::Json* ok = resp->find("ok");
      if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
        ++tally.completed;
        tally.latencies_ms.push_back(ms);
        continue;
      }
      ++tally.rejected;
      std::string code = "unknown";
      if (const report::Json* err = resp->find("error"))
        if (const report::Json* c = err->find("code"); c && c->is_string())
          code = c->as_string();
      auto it = std::find_if(
          tally.by_code.begin(), tally.by_code.end(),
          [&](const auto& kv) { return kv.first == code; });
      if (it == tally.by_code.end())
        tally.by_code.emplace_back(code, 1);
      else
        ++it->second;
    }
  };

  const auto t_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(concurrency));
  for (int i = 0; i < concurrency; ++i) threads.emplace_back(fire, i);
  for (auto& t : threads) t.join();
  out.wall_s = std::chrono::duration<double>(Clock::now() - t_start).count();

  for (const auto& tally : tallies) {
    out.completed += tally.completed;
    out.rejected += tally.rejected;
    out.transport_errors += tally.transport_errors;
    out.trace_mismatches += tally.trace_mismatches;
    out.latencies_ms.insert(out.latencies_ms.end(),
                            tally.latencies_ms.begin(),
                            tally.latencies_ms.end());
    for (const auto& [code, n] : tally.by_code) {
      auto it = std::find_if(
          out.by_code.begin(), out.by_code.end(),
          [&](const auto& kv) { return kv.first == code; });
      if (it == out.by_code.end())
        out.by_code.emplace_back(code, n);
      else
        it->second += n;
    }
  }
  std::sort(out.latencies_ms.begin(), out.latencies_ms.end());
  return true;
}

report::MetricsReport loadgen_report(const LoadgenResult& r,
                                     const std::string& tool) {
  report::MetricsReport rep;
  rep.tool = tool;
  rep.title = tool == "cubie_loadgen_cluster"
                  ? "Cubie-Cluster load generator"
                  : "Cubie-Serve load generator";
  auto& rec = rep.add_record("loadgen", "mix", "-", "aggregate");
  rec.set("req_per_s", r.req_per_s());
  rec.set("p50_ms", r.percentile_ms(50));
  rec.set("p95_ms", r.percentile_ms(95));
  rec.set("p99_ms", r.percentile_ms(99));
  rec.set("completed", static_cast<double>(r.completed));
  rec.set("rejected", static_cast<double>(r.rejected));
  rec.set("trace_mismatches", static_cast<double>(r.trace_mismatches));
  // The client-side latency distribution, in the daemon's fixed buckets
  // and cumulative (Prometheus-style) counts, as a captured table — so it
  // rides the MetricsReport byte-stability contract without adding
  // one metric per bucket to the trend gate.
  const telemetry::HistogramSnapshot hist = r.latency_histogram();
  report::MetricsReport::CapturedTable table;
  table.name = "latency_histogram";
  table.columns = {"le_seconds", "cumulative_count"};
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < hist.counts.size(); ++i) {
    cum += hist.counts[i];
    const std::string le = i < hist.bounds.size()
                               ? telemetry::prometheus_bound_label(hist.bounds[i])
                               : "+Inf";
    table.rows.push_back({le, std::to_string(cum)});
  }
  rep.tables.push_back(std::move(table));
  return rep;
}

}  // namespace cubie::serve
