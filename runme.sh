#!/bin/sh
# Full evaluation driver, mirroring the paper artifact's runme.sh: builds,
# runs the test suite, then regenerates every figure/table into results/.
# Usage:  sh runme.sh [scale-divisor]   (default 4; 1 = paper-size sweeps)
set -e

SCALE="${1:-4}"
export CUBIE_SCALE="$SCALE"
OUT=results
mkdir -p "$OUT"

echo "== configure + build =="
cmake -B build -G Ninja >/dev/null
cmake --build build

echo "== compilation test: all targets built =="

echo "== unit + integration tests =="
ctest --test-dir build --output-on-failure | tee "$OUT/ctest.txt" | tail -3

echo "== performance evaluation (Figures 3-6) =="
./build/bench/fig03_perf            | tee "$OUT/Figure3_perf.txt" | tail -2
./build/bench/fig04_tc_vs_baseline  | tee "$OUT/Figure4_TCvsBaseline.txt" | tail -5
./build/bench/fig05_cc_vs_tc        | tee "$OUT/Figure5_CCvsTC.txt" | tail -2
./build/bench/fig06_cce_vs_tc       | tee "$OUT/Figure6_CCEvsTC.txt" | tail -2

echo "== power evaluation (Figures 7-8) =="
./build/bench/fig07_edp             | tee "$OUT/Figure7_edp.txt" | tail -6
./build/bench/fig08_power           | tee "$OUT/Figure8_power.txt" | tail -2

echo "== memory / coverage analyses (Figures 9-12, Table 7) =="
./build/bench/fig09_roofline        > "$OUT/Figure9_roofline.txt"
./build/bench/fig10_pca_inputs      > "$OUT/Figure10_pca_inputs.txt"
./build/bench/fig11_pca_suites      > "$OUT/Figure11_pca_suites.txt"
./build/bench/fig12_peaks           > "$OUT/Figure12_peaks.txt"
./build/bench/table07_coverage      > "$OUT/Table7_coverage.txt"

echo "== accuracy evaluation (Table 6) =="
./build/bench/table06_accuracy      | tee "$OUT/all_error.txt" | tail -12

echo "== ablations =="
for b in ablation_accumulation ablation_precision ablation_padding \
         ablation_occupancy ablation_issue_cost; do
  ./build/bench/$b > "$OUT/$b.txt"
done

echo "== done; outputs in $OUT/ =="
ls "$OUT"
