#include "sparse/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cubie::sparse {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Coo read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("mm: empty stream");
  std::istringstream hdr(line);
  std::string banner, object, format, field, symmetry;
  hdr >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    throw std::runtime_error("mm: missing %%MatrixMarket banner");
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix" || format != "coordinate")
    throw std::runtime_error("mm: only 'matrix coordinate' is supported");
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer")
    throw std::runtime_error("mm: unsupported field type: " + field);
  const bool symmetric = symmetry == "symmetric" || symmetry == "skew-symmetric";
  const double skew = symmetry == "skew-symmetric" ? -1.0 : 1.0;
  if (!symmetric && symmetry != "general")
    throw std::runtime_error("mm: unsupported symmetry: " + symmetry);

  // Skip comments, then read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long rows = 0, cols = 0, entries = 0;
  if (!(size_line >> rows >> cols >> entries))
    throw std::runtime_error("mm: malformed size line");

  Coo coo;
  coo.rows = static_cast<int>(rows);
  coo.cols = static_cast<int>(cols);
  coo.row.reserve(static_cast<std::size_t>(entries));
  coo.col.reserve(static_cast<std::size_t>(entries));
  coo.val.reserve(static_cast<std::size_t>(entries));
  for (long e = 0; e < entries; ++e) {
    long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) throw std::runtime_error("mm: truncated entries");
    if (!pattern && !(in >> v)) throw std::runtime_error("mm: truncated value");
    if (r < 1 || r > rows || c < 1 || c > cols)
      throw std::runtime_error("mm: entry out of bounds");
    coo.row.push_back(static_cast<int>(r - 1));
    coo.col.push_back(static_cast<int>(c - 1));
    coo.val.push_back(v);
    if (symmetric && r != c) {
      coo.row.push_back(static_cast<int>(c - 1));
      coo.col.push_back(static_cast<int>(r - 1));
      coo.val.push_back(skew * v);
    }
  }
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("mm: cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const Coo& coo) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << coo.rows << ' ' << coo.cols << ' ' << coo.nnz() << '\n';
  for (std::size_t i = 0; i < coo.nnz(); ++i) {
    out << coo.row[i] + 1 << ' ' << coo.col[i] + 1 << ' ' << coo.val[i] << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const Coo& coo) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("mm: cannot open " + path + " for write");
  write_matrix_market(f, coo);
}

}  // namespace cubie::sparse
