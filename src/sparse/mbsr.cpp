#include "sparse/mbsr.hpp"

#include <algorithm>
#include <map>

namespace cubie::sparse {

double Mbsr::fill_ratio() const {
  if (blocks() == 0) return 0.0;
  return static_cast<double>(nnz_stored()) /
         (static_cast<double>(blocks()) * kBlock * kBlock);
}

std::size_t Mbsr::nnz_stored() const {
  std::size_t n = 0;
  for (double v : vals)
    if (v != 0.0) ++n;
  return n;
}

Mbsr mbsr_from_csr(const Csr& a) {
  Mbsr m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.block_rows = (a.rows + kBlock - 1) / kBlock;
  m.block_cols = (a.cols + kBlock - 1) / kBlock;
  m.row_ptr.assign(static_cast<std::size_t>(m.block_rows) + 1, 0);

  // For each block row, gather the touched block columns and fill them.
  std::map<int, std::size_t> slot;  // block col -> index into this row's blocks
  for (int br = 0; br < m.block_rows; ++br) {
    slot.clear();
    const int r_lo = br * kBlock;
    const int r_hi = std::min(r_lo + kBlock, a.rows);
    // First pass: identify block columns (map keeps them sorted).
    for (int r = r_lo; r < r_hi; ++r) {
      for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        slot.emplace(a.col_idx[static_cast<std::size_t>(p)] / kBlock, 0);
      }
    }
    const std::size_t base = m.col_idx.size();
    std::size_t i = 0;
    for (auto& [bc, idx] : slot) {
      idx = base + i++;
      m.col_idx.push_back(bc);
    }
    m.vals.resize(m.col_idx.size() * kBlock * kBlock, 0.0);
    // Second pass: scatter values into the dense blocks.
    for (int r = r_lo; r < r_hi; ++r) {
      for (int p = a.row_ptr[static_cast<std::size_t>(r)]; p < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        const int c = a.col_idx[static_cast<std::size_t>(p)];
        const std::size_t blk = slot[c / kBlock];
        const int lr = r - r_lo;
        const int lc = c % kBlock;
        m.vals[blk * kBlock * kBlock + static_cast<std::size_t>(lr * kBlock + lc)] =
            a.vals[static_cast<std::size_t>(p)];
      }
    }
    m.row_ptr[static_cast<std::size_t>(br) + 1] = static_cast<int>(m.col_idx.size());
  }
  return m;
}

Csr csr_from_mbsr(const Mbsr& a) {
  Coo coo;
  coo.rows = a.rows;
  coo.cols = a.cols;
  for (int br = 0; br < a.block_rows; ++br) {
    for (int p = a.row_ptr[static_cast<std::size_t>(br)]; p < a.row_ptr[static_cast<std::size_t>(br) + 1]; ++p) {
      const int bc = a.col_idx[static_cast<std::size_t>(p)];
      const double* blk = a.vals.data() + static_cast<std::size_t>(p) * kBlock * kBlock;
      for (int lr = 0; lr < kBlock; ++lr) {
        for (int lc = 0; lc < kBlock; ++lc) {
          const double v = blk[lr * kBlock + lc];
          const int r = br * kBlock + lr;
          const int c = bc * kBlock + lc;
          if (v != 0.0 && r < a.rows && c < a.cols) {
            coo.row.push_back(r);
            coo.col.push_back(c);
            coo.val.push_back(v);
          }
        }
      }
    }
  }
  return csr_from_coo(coo);
}

}  // namespace cubie::sparse
