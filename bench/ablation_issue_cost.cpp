// Ablation: sensitivity of the CC-vs-TC gap to the two CC-emulation model
// parameters - the per-MMA instruction cost and the achieved-bandwidth loss.
// Takes the real counted profile of the Scan TC kernel and re-prices CC
// replacements across the parameter grid, showing which mechanism drives
// the paper's Figure 5 observation for each regime.

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"
#include "sim/calibration.hpp"
#include "sim/model.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_issue_cost",
      "Ablation: CC-vs-TC gap sensitivity to issue cost and mem_eff (H200)");
  const auto model = bench.model_for(sim::Gpu::H200);
  std::cout << "=== Ablation: what makes CC slower than TC? (H200, Scan & "
               "SpMV) ===\n\n";

  engine::Plan plan = engine::Plan::representative(bench.scale)
                          .with_workloads({"Scan", "SpMV"})
                          .with_variants({core::Variant::TC})
                          .with_gpus({sim::Gpu::H200});
  bench.warm(plan);

  for (const char* name : {"Scan", "SpMV"}) {
    const auto* w = bench.workload(name);
    const auto tc_case = w->cases(bench.scale)[w->representative_case()];
    const auto& tc = bench.run(*w, core::Variant::TC, tc_case);
    const double t_tc = model->predict(tc.profile).time_s;

    std::cout << name << " (TC time " << common::fmt_double(t_tc * 1e6, 1)
              << " us):\n";
    common::Table t({"CC mem_eff", "instr x1", "instr x4", "instr x16",
                     "instr x64"});
    for (double mem_eff : {0.92, 0.60, 0.40, 0.25}) {
      std::vector<std::string> row{common::fmt_double(mem_eff, 2)};
      for (double instr_scale : {1.0, 4.0, 16.0, 64.0}) {
        // Re-price: move tensor FLOPs to the CUDA pipe, scale instructions,
        // apply the CC bandwidth efficiency.
        sim::KernelProfile cc = tc.profile;
        cc.cc_flops += cc.tc_flops;
        cc.tc_flops = 0.0;
        cc.warp_instructions *= instr_scale;
        cc.mem_eff = mem_eff;
        cc.pipe_eff = sim::cal::kCcEmulationEff;
        const double ratio = t_tc / model->predict(cc).time_s;
        row.push_back(common::fmt_double(ratio, 2) + "x");
        bench
            .record(name, "CC", "H200",
                    "mem_eff=" + common::fmt_double(mem_eff, 2) + ",instr_x" +
                        common::fmt_double(instr_scale, 0))
            .set("tc_over_cc", ratio);
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    bench.capture(std::string("issue_cost_") + name, t);
    std::cout << '\n';
  }
  std::cout <<
      "Reading: for the memory-bound kernels the CC slowdown is dominated by\n"
      "the lost memory-level parallelism (mem_eff row direction), not by raw\n"
      "instruction count until the x16-x64 regime - supporting the model's\n"
      "choice to encode the Section 6.2 gap as a bandwidth-efficiency loss\n"
      "(kMemEffCcEmulation / kMemEffCcSmall in calibration.hpp).\n";
  return bench.finish();
}
