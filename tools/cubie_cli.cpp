// cubie: the command-line driver for the suite. Runs any workload / variant
// / test case against any device model and reports performance, power, and
// accuracy; also lists the suite, dumps machine-readable CSV, and fronts
// the Cubie-Serve experiment daemon.
//
//   cubie list
//   cubie cases <workload> [--scale N]
//   cubie run <workload> [--variant TC|CC|CC-E|Baseline|all]
//                        [--case IDX|all] [--gpu A100|H200|B200|all]
//                        [--scale N] [--errors] [--csv] [--check]
//                        [--json file] [--jobs N] [--cache DIR]
//   cubie profile <workload> [--variant TC] [--case IDX] [--gpu H200]
//                        [--scale N] [--json file] [--cache DIR]
//   cubie check [workload...] [--case rep|all] [--scale N] [--json file]
//                        [--jobs N] [--cache DIR] [--perturb EPS]
//   cubie record --json report.json [--history FILE] [--sha SHA]
//                        [--perturb EPS]
//   cubie trend [--history FILE] [--tol FRAC] [--metric NAME]
//   cubie serve [--socket PATH | --port N] [--workers N] [--queue-limit N]
//                        [--jobs N] [--cache DIR]
//   cubie loadgen [workload...] [--socket PATH | --port N]
//                        [--concurrency N] [--requests N] [--sleep-ms MS]
//                        [--deadline MS] [--json file]
//   cubie request <cmd> [workload] [--socket PATH | --port N]
//                        [--deadline MS] [--json file]
//   cubie top [--socket PATH | --port N] [--interval MS] [--iterations N]
//   cubie flight [--socket PATH | --port N] [--json file]
//   cubie explain <trace-id-prefix> --from FILE [--json file]
//   cubie roofline <workload> [--variant V|all] [--case I|all] [--gpu G]
//                        [--scale N] [--json file] [--jobs N] [--cache DIR]
//
// run, profile, and check go through engine::ExperimentEngine: each unique
// (workload, variant, case, scale) cell executes once and is re-priced on
// every requested GPU; --cache persists cells across invocations and
// --jobs fans the functional runs out over a thread pool. They also accept
// the Cubie-Scope flags --events FILE (JSONL event log), --trace-out FILE
// (Chrome trace_event timeline), --progress (live stderr progress; it
// auto-suppresses when stderr is not a TTY, --progress=force overrides),
// and --metrics-out FILE (final Cubie-Pulse Prometheus-text snapshot; the
// --json report additionally gains the "hw" hardware-counter block).
//
// run's --json writes the schema-v1 MetricsReport built by
// serve::run_report — the same routine the Cubie-Serve daemon answers
// "run" requests with, so a served response is byte-identical to the file
// this command writes for the same plan.
//
// check is the Cubie-Check differential conformance harness (src/check/):
// it judges every non-baseline variant against the baseline variant (or
// the CPU serial reference) under Table 6-derived tolerances and exits 1
// on any violation. --perturb deliberately skews the outputs to prove the
// harness rejects out-of-tolerance results (used by ctest).
//
// record / trend are the Cubie-Scope bench-history regression store
// (src/telemetry/history.hpp): record appends one summarized report to
// BENCH_history.jsonl; trend judges the newest entry against the rolling
// median of its predecessors and exits 1 past the tolerance. record
// resolves the sha to attribute as --sha, then $GITHUB_SHA, then
// `git rev-parse --short HEAD`, and records the documented "unknown" when
// all three are unavailable. record's --perturb skews the metrics before
// appending so CI can prove trend rejects a regressed entry.
//
// serve / loadgen / request / top are the Cubie-Serve daemon and its
// clients (src/serve/, docs/SERVING.md): serve hosts one warm engine
// behind a line-delimited JSON socket protocol with bounded-queue
// backpressure and request coalescing; loadgen measures serving throughput
// and latency percentiles; request is a one-shot scripting client
// (`request metrics` prints the raw Prometheus exposition, `request stats`
// a human-readable table — --json for the machine form); top polls a
// running daemon's metrics/stats and renders a live dashboard.
//
// roofline executes cells like run, then prints modeled-vs-measured per
// cell: arithmetic intensity and the modeled bottleneck next to the
// measured IPC / cache-miss% / task-clock from the Cubie-Pulse hardware
// counters (typed unavailable fallback when perf_event_open is denied).

#include "check/check.hpp"
#include "cluster/router.hpp"
#include "common/metrics.hpp"
#include "common/report.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"
#include "engine/engine.hpp"
#include "mma/simd.hpp"
#include "serve/client.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "sim/model.hpp"
#include "sim/model_registry.hpp"
#include "sim/trace.hpp"
#include "telemetry/history.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/slowlog.hpp"
#include "telemetry/trace_context.hpp"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace cubie;

constexpr const char* kSubcommands[] = {
    "list", "cases",  "run",   "profile", "check",   "record", "trend",
    "serve", "loadgen", "request", "top",  "roofline", "flight", "explain",
    "cluster",
};

constexpr const char* kFlags[] = {
    "--scale",  "--variant",     "--case",    "--gpu",      "--dataset",
    "--json",   "--jobs",        "--cache",   "--perturb",  "--events",
    "--trace-out", "--progress", "--history", "--sha",      "--tol",
    "--metric", "--errors",      "--csv",     "--check",    "--socket",
    "--port",   "--workers",     "--queue-limit", "--concurrency",
    "--requests", "--sleep-ms",  "--deadline", "--metrics-out",
    "--interval", "--iterations", "--model",   "--trace",    "--slow-ms",
    "--slowlog", "--flight-size", "--flight-dump", "--from", "--no-trace",
    "--worker", "--spawn",       "--cluster", "--addr",     "--retries",
    "--probe-interval", "--unhealthy-after",
};

int usage() {
  std::cerr <<
      "usage:\n"
      "  cubie list\n"
      "  cubie cases <workload> [--scale N]\n"
      "  cubie run <workload> [--variant V|all] [--case I|all]\n"
      "            [--gpu G|all] [--scale N] [--errors] [--csv] [--check]\n"
      "            [--json file] [--jobs N] [--cache DIR]\n"
      "            [--dataset file.mtx]   (SpMV / SpGEMM only)\n"
      "  cubie profile <workload> [--variant V] [--case I] [--gpu G]\n"
      "            [--scale N] [--json file] [--cache DIR]\n"
      "  cubie check [workload...] [--case rep|all] [--scale N]\n"
      "            [--json file] [--jobs N] [--cache DIR] [--perturb EPS]\n"
      "  cubie record --json report.json [--history FILE] [--sha SHA]\n"
      "            [--perturb EPS]\n"
      "  cubie trend [--history FILE] [--tol FRAC] [--metric NAME]\n"
      "  cubie serve [--socket PATH | --port N] [--workers N]\n"
      "            [--queue-limit N] [--jobs N] [--cache DIR]\n"
      "            [--flight-size N] [--flight-dump FILE]\n"
      "            [--slowlog FILE] [--slow-ms MS]\n"
      "  cubie cluster [--socket PATH | --port N]\n"
      "            (--worker ADDR ... | --spawn N) [--jobs N] [--cache DIR]\n"
      "            [--retries N] [--probe-interval MS]\n"
      "            [--unhealthy-after N]\n"
      "  cubie loadgen [workload...] [--socket PATH | --port N]\n"
      "            [--concurrency N] [--requests N] [--sleep-ms MS]\n"
      "            [--deadline MS] [--json file] [--no-trace] [--cluster]\n"
      "  cubie request <cmd> [workload] [--socket PATH | --port N]\n"
      "            [--addr A[,B,...]] [--retries N]\n"
      "            [--deadline MS] [--json file] [--trace ID]\n"
      "  cubie top [--socket PATH | --port N] [--interval MS]\n"
      "            [--iterations N]\n"
      "  cubie flight [--socket PATH | --port N] [--json file]\n"
      "  cubie explain <trace-id-prefix> --from FILE [--json file]\n"
      "  cubie roofline <workload> [--variant V|all] [--case I|all]\n"
      "            [--gpu G] [--scale N] [--json file] [--jobs N]\n"
      "            [--cache DIR]\n"
      "run/profile/check/serve/roofline also accept [--events FILE]\n"
      "[--trace-out FILE] [--metrics-out FILE] [--progress[=force]]\n"
      "(Cubie-Scope/Pulse telemetry; see docs/OBSERVABILITY.md;\n"
      "serving: docs/SERVING.md) and [--model NAME] to pick the\n"
      "device-model backend (`cubie list` enumerates; docs/MODEL.md)\n";
  return 2;
}

// Classic dynamic-programming edit distance, for "did you mean" hints.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

template <std::size_t N>
std::string nearest(const std::string& word, const char* const (&cands)[N]) {
  std::string best;
  std::size_t best_d = std::string::npos;
  for (const char* c : cands) {
    const std::size_t d = edit_distance(word, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

int unknown_subcommand(const std::string& arg) {
  std::cerr << "cubie: unknown subcommand '" << arg << "' (did you mean '"
            << nearest(arg, kSubcommands) << "'?)\n";
  return usage();
}

int unknown_flag(const std::string& cmd, const std::string& arg) {
  std::cerr << "cubie " << cmd << ": unknown flag '" << arg
            << "' (did you mean '" << nearest(arg, kFlags) << "'?)\n";
  return usage();
}

std::optional<core::Variant> parse_variant(const std::string& s) {
  if (s == "Baseline") return core::Variant::Baseline;
  if (s == "TC") return core::Variant::TC;
  if (s == "CC") return core::Variant::CC;
  if (s == "CC-E" || s == "CCE") return core::Variant::CCE;
  return std::nullopt;
}

std::optional<sim::Gpu> parse_gpu(const std::string& s) {
  if (s == "A100") return sim::Gpu::A100;
  if (s == "H200") return sim::Gpu::H200;
  if (s == "B200") return sim::Gpu::B200;
  return std::nullopt;
}

int cmd_list(engine::ExperimentEngine& eng) {
  common::Table t({"workload", "quadrant", "dwarf", "baseline", "variants"});
  for (const auto& w : eng.suite()) {
    std::string variants = "TC CC";
    if (w->has_baseline()) variants = "Baseline " + variants;
    if (w->cce_distinct()) variants += " CC-E";
    t.add_row({w->name(), core::quadrant_name(w->quadrant()), w->dwarf(),
               w->baseline_name(), variants});
  }
  t.print(std::cout);

  // The modeled devices (paper Table 5): every spec the run/profile/check
  // commands can price cells on via --gpu.
  std::cout << "\ndevices:\n";
  common::Table d({"gpu", "SMs", "clock_GHz", "fp64_tc_TFLOPs",
                   "fp64_cc_TFLOPs", "fp16_tc_TFLOPs", "dram_GB/s",
                   "dram_GiB", "tdp_W"});
  for (sim::Gpu g : sim::all_gpus()) {
    const sim::DeviceSpec& s = sim::spec_for(g);
    d.add_row({s.name, std::to_string(s.num_sm),
               common::fmt_double(s.clock_hz / 1e9, 2),
               common::fmt_double(s.fp64_tc_peak / 1e12, 1),
               common::fmt_double(s.fp64_cc_peak / 1e12, 1),
               common::fmt_double(s.fp16_tc_peak / 1e12, 0),
               common::fmt_double(s.dram_bw / 1e9, 0),
               common::fmt_double(s.dram_capacity / (1024.0 * 1024 * 1024), 0),
               common::fmt_double(s.tdp_w, 0)});
  }
  d.print(std::cout);

  // The device-model backends run/profile/check/serve/roofline (and every
  // bench) can price cells with via --model.
  std::cout << "\nmodel backends:\n";
  common::Table m({"model", "description"});
  for (const auto& name : sim::model_backend_names())
    m.add_row({name, sim::model_backend_description(name)});
  m.print(std::cout);

  // Which MMA-emulation kernel table dispatch resolved on this host, and
  // why (results are bit-identical either way; only throughput differs).
  std::cout << "\nsimd: " << mma::simd::isa_name(mma::simd::active_isa());
  if (mma::simd::scalar_forced_by_env())
    std::cout << " (CUBIE_FORCE_SCALAR=1)";
  else if (!mma::simd::compiled_with_simd())
    std::cout << " (vector kernels not compiled in)";
  std::cout << '\n';
  return 0;
}

// One line per span: modeled time of the span's inclusive profile, its
// share of the root's modeled time, and per-pipe utilizations.
void print_span_tree(const sim::TraceNode& n, const sim::DeviceModel& model,
                     double root_time_s, int depth) {
  const auto pred = model.predict(n.inclusive);
  std::string label(static_cast<std::size_t>(depth) * 2, ' ');
  label += n.name;
  if (label.size() < 30) label.resize(30, ' ');
  const double share =
      root_time_s > 0.0 ? 100.0 * pred.time_s / root_time_s : 0.0;
  auto pct = [](double u) { return common::fmt_double(u * 100.0, 1) + "%"; };
  std::cout << label << std::setw(10)
            << common::fmt_double(pred.time_s * 1e6, 2) << " us "
            << std::setw(6) << common::fmt_double(share, 1) << "%"
            << "  tensor " << std::setw(6) << pct(pred.u_tensor)
            << "  cuda " << std::setw(6) << pct(pred.u_cuda)
            << "  mem " << std::setw(6) << pct(pred.u_mem)
            << "  bound " << sim::bottleneck_name(pred.bound) << '\n';
  for (const auto& c : n.children)
    print_span_tree(c, model, root_time_s, depth + 1);
}

int cmd_profile(engine::ExperimentEngine& eng, const core::Workload& w,
                core::Variant v, const core::TestCase& tc, int scale,
                sim::Gpu gpu, const std::string& json_path) {
  sim::Tracer tracer;
  const auto& out = eng.run_traced(w, v, tc, scale, tracer);
  // Price with the same backend the engine keys cells under (--model).
  const auto model_ptr =
      sim::make_device_model(eng.options().model, sim::spec_for(gpu));
  const sim::DeviceModel& model = *model_ptr;
  const auto pred = model.predict(out.profile);

  std::cout << "profile: " << w.name() << " / " << core::variant_name(v)
            << " / case " << tc.label << " on " << sim::gpu_name(gpu)
            << "\nmodeled kernel time "
            << common::fmt_double(pred.time_s * 1e6, 2) << " us, avg power "
            << common::fmt_double(pred.avg_power_w, 0) << " W, bound "
            << sim::bottleneck_name(pred.bound) << "\n\n"
            << "span tree (inclusive per span; % = share of root's modeled "
               "time):\n";
  double root_time = 0.0;
  for (const auto& r : tracer.roots())
    root_time += model.predict(r.inclusive).time_s;
  std::size_t spans = 0;
  double host_wall = 0.0;
  long rss = 0;
  for (const auto& r : tracer.roots()) {
    print_span_tree(r, model, root_time, 0);
    spans += r.tree_size();
    host_wall += r.wall_s;
    rss = std::max(rss, r.peak_rss_kb);
  }
  std::cout << "\n" << spans << " spans; host wall "
            << common::fmt_double(host_wall * 1e3, 1) << " ms; peak RSS "
            << rss / 1024 << " MiB\n";
  const auto ec = eng.counters();
  std::cout << "engine: " << ec.misses + ec.traced_reruns
            << " functional run(s), "
            << common::fmt_double(ec.exec_wall_s * 1e3, 1)
            << " ms inside Workload::run\n";

  if (!json_path.empty()) {
    report::MetricsReport rep;
    rep.tool = "cubie_profile";
    rep.title = "cubie profile " + w.name();
    auto& rec = rep.add_record(w.name(), core::variant_name(v),
                               sim::gpu_name(gpu), tc.label);
    rec.set("time_ms", pred.time_s * 1e3);
    rec.set("avg_power_w", pred.avg_power_w);
    rec.set("energy_j", pred.energy_j);
    rec.set("host_wall_ms", host_wall * 1e3);
    rec.set("spans", static_cast<double>(spans));
    rep.traces = tracer.roots();
    rep.engine = eng.stats();
    rep.hw = eng.hw_stats();
    if (!rep.write_file(json_path)) {
      std::cerr << "cannot write " << json_path << '\n';
      return 1;
    }
    std::cerr << "[json report: " << json_path << "]\n";
  }
  return 0;
}

// The Cubie-Check conformance sweep: execute the plan's cells, judge every
// non-baseline variant against the group's reference, exit 1 on violation.
int cmd_check(engine::ExperimentEngine& eng,
              const std::vector<std::string>& workloads, int scale,
              bool all_cases, const std::string& json_path, double perturb) {
  // Unknown names would be silently skipped during Plan expansion; a
  // conformance run must not report PASS for a workload it never checked.
  for (const auto& name : workloads) {
    if (eng.workload(name) == nullptr) {
      std::cerr << "unknown workload '" << name << "' (try: cubie list)\n";
      return 2;
    }
  }
  engine::Plan plan = all_cases ? engine::Plan::suite(scale)
                                : engine::Plan::representative(scale);
  plan.workloads = workloads;  // empty = full suite
  const auto conf = check::verify_plan(eng, plan, perturb);

  conf.to_table().print(std::cout);
  conf.print_summary(std::cerr);
  if (!json_path.empty()) {
    auto rep = conf.to_metrics_report(
        "cubie_check", "Cubie-Check conformance sweep", scale);
    if (eng.active()) rep.engine = eng.stats();
    if (!rep.write_file(json_path)) {
      std::cerr << "cannot write " << json_path << '\n';
      return 1;
    }
    if (json_path != "-") std::cerr << "[json report: " << json_path << "]\n";
  }
  return conf.pass() ? 0 : 1;
}

// The sha a history entry is attributed to: --sha wins, then $GITHUB_SHA
// (CI), then the working tree's `git rev-parse --short HEAD`. Outside a
// git checkout (or with git missing) the recorded sha is the documented
// "unknown" — never an error, so `cubie record` works on unpacked
// tarballs and in containers without git.
std::string resolve_sha(std::string sha) {
  if (!sha.empty()) return sha;
  if (const char* env = std::getenv("GITHUB_SHA"); env != nullptr && *env)
    return env;
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    std::string out;
    char buf[128];
    while (std::fgets(buf, sizeof buf, p) != nullptr) out += buf;
    const int rc = ::pclose(p);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
      out.pop_back();
    if (rc == 0 && !out.empty()) return out;
  }
  return "unknown";
}

// Append one summarized --json report to the bench history. `perturb`
// multiplies every metric mean by (1 + perturb) before appending — the
// falsifiability hook ctest/CI use to prove `cubie trend` rejects a
// regressed entry.
int cmd_record(const std::string& json_path, const std::string& history_path,
               std::string sha, double perturb) {
  if (json_path.empty()) {
    std::cerr << "cubie record needs --json <report.json>\n";
    return 2;
  }
  std::string err;
  const auto rep = report::MetricsReport::read_file(json_path, &err);
  if (!rep) {
    std::cerr << "cubie record: " << json_path << ": " << err << '\n';
    return 2;
  }
  telemetry::HistoryEntry e =
      telemetry::summarize(*rep, resolve_sha(std::move(sha)));
  if (perturb != 0.0) {
    for (auto& [name, value] : e.metrics) value *= 1.0 + perturb;
  }
  if (!telemetry::append_entry(history_path, e, &err)) {
    std::cerr << "cubie record: " << err << '\n';
    return 1;
  }
  std::cout << "recorded " << e.tool << " @ " << e.sha << " (scale "
            << e.scale << ", " << e.metrics.size() << " metric(s) over "
            << e.records << " record(s)) -> " << history_path << '\n';
  return 0;
}

// Judge the newest history entry against the rolling median of its
// predecessors; exit 1 on any direction-aware regression beyond `tol`.
int cmd_trend(const std::string& history_path, double tol,
              const std::string& only_metric) {
  std::string err;
  const auto entries = telemetry::load_history(history_path, &err);
  if (!entries) {
    std::cerr << "cubie trend: " << err << '\n';
    return 2;
  }
  if (entries->empty()) {
    std::cout << "cubie trend: " << history_path << " is empty\n";
    return 0;
  }
  const auto rep = telemetry::trend(*entries, tol, only_metric);
  std::cout << "cubie trend: " << rep.tool << " @ " << rep.sha << " (scale "
            << rep.scale << ") vs median of " << rep.prior
            << " prior entr" << (rep.prior == 1 ? "y" : "ies") << " (tol "
            << common::fmt_double(tol * 100.0, 1) << "%)\n";
  if (rep.prior == 0) {
    std::cout << "no prior entries with this (tool, scale): nothing to "
                 "judge\n";
    return 0;
  }
  common::Table t({"metric", "median", "latest", "worse_%", "verdict"});
  std::size_t regressions = 0;
  for (const auto& d : rep.deltas) {
    if (d.regression) ++regressions;
    t.add_row({d.metric, common::fmt_sci(d.median), common::fmt_sci(d.latest),
               common::fmt_double(d.worse * 100.0, 2),
               d.regression ? "REGRESSION" : "ok"});
  }
  t.print(std::cout);
  std::cout << rep.deltas.size() << " metric(s) judged, " << regressions
            << " regression(s)\n";
  return rep.pass() ? 0 : 1;
}

int cmd_cases(const core::Workload& w, int scale) {
  common::Table t({"index", "label", "dataset"});
  int i = 0;
  for (const auto& c : w.cases(scale)) {
    t.add_row({std::to_string(i++), c.label, c.dataset});
  }
  t.print(std::cout);
  std::cout << "(representative case: " << w.representative_case() << ")\n";
  return 0;
}

// --- Cubie-Serve ----------------------------------------------------------

serve::Server* g_server = nullptr;        // for the signal handler only
cluster::Router* g_router = nullptr;      // ditto, `cubie cluster`
int g_flight_wake_wr = -1;  // SIGUSR2 self-pipe, write end

extern "C" void on_shutdown_signal(int) {
  // Async-signal-safe: request_shutdown is an atomic store + pipe write.
  if (g_server != nullptr) g_server->request_shutdown();
  if (g_router != nullptr) g_router->request_shutdown();
}

extern "C" void on_flight_signal(int) {
  // Async-signal-safe: the handler only writes one byte; the watcher
  // thread in cmd_serve does the actual (allocating, locking) dump.
  if (g_flight_wake_wr >= 0) {
    const char b = 'f';
    [[maybe_unused]] ssize_t n = ::write(g_flight_wake_wr, &b, 1);
  }
}

int cmd_serve(serve::ServerOptions sopts) {
  const std::string dump_path = sopts.flight_dump_path;
  serve::Server server(std::move(sopts));
  std::string err;
  if (!server.start(&err)) {
    std::cerr << "cubie serve: " << err << '\n';
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
  // Cubie-Flight: SIGUSR2 dumps the flight ring to --flight-dump via the
  // self-pipe pattern (handler writes a byte, this thread does the I/O).
  int flight_pipe[2] = {-1, -1};
  std::thread flight_watcher;
  const auto flight = server.flight_recorder();
  if (flight && !dump_path.empty() && ::pipe(flight_pipe) == 0) {
    g_flight_wake_wr = flight_pipe[1];
    std::signal(SIGUSR2, on_flight_signal);
    flight_watcher = std::thread([flight, dump_path, rd = flight_pipe[0]] {
      char b;
      for (;;) {
        const ssize_t n = ::read(rd, &b, 1);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return;  // write end closed: serve() is done
        if (flight->dump_file(dump_path))
          std::cerr << "cubie serve: flight ring dumped to " << dump_path
                    << '\n';
      }
    });
  }
  std::cerr << "cubie serve: listening on " << server.endpoint() << " ("
            << "workers " << server.engine().options().jobs << "x engine jobs"
            << "; SIGINT or a 'shutdown' request drains"
            << (flight_watcher.joinable() ? "; SIGUSR2 dumps the flight ring"
                                          : "")
            << ")\n";
  server.serve();
  g_server = nullptr;
  if (flight_watcher.joinable()) {
    std::signal(SIGUSR2, SIG_DFL);
    g_flight_wake_wr = -1;
    ::close(flight_pipe[1]);  // watcher's read() returns 0 and it exits
    flight_watcher.join();
    ::close(flight_pipe[0]);
  }
  const auto st = server.stats();
  const auto ec = server.engine().counters();
  std::cerr << "cubie serve: drained. " << st.completed << " completed, "
            << st.rejected_overloaded << " overloaded, "
            << st.rejected_deadline << " deadline, " << st.rejected_shutdown
            << " shutting-down, " << st.bad_requests
            << " bad request(s); engine " << ec.misses << " run(s), "
            << ec.memo_hits << " memo, " << ec.disk_hits << " disk, "
            << ec.coalesced_hits << " coalesced\n";
  return 0;
}

// --- Cubie-Cluster ---------------------------------------------------------
// Front-end router over N `cubie serve` workers (src/cluster/,
// docs/SERVING.md "Cubie-Cluster"). Two ways to get workers:
//   --worker ADDR ...   attach to daemons someone else runs (ADDR is a
//                       Unix socket path or an all-digits TCP port);
//   --spawn N           fork N `cubie serve` children on Unix sockets in a
//                       private temp dir, sharing one disk-cache dir, and
//                       drain them when the router drains.

struct SpawnedWorker {
  pid_t pid = -1;
  std::string socket;
};

// Fork+exec one `cubie serve` child. argv0 is this binary (the cluster
// re-execs itself, so router and workers are always the same build).
pid_t spawn_worker(const std::string& argv0, const std::string& socket,
                   const engine::EngineOptions& eng_opts) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const std::string jobs = std::to_string(eng_opts.jobs);
  std::vector<std::string> args = {argv0,     "serve",        "--socket",
                                   socket,    "--jobs",       jobs,
                                   "--model", eng_opts.model, "--flight-dump",
                                   socket + ".flight.jsonl"};
  if (!eng_opts.cache_dir.empty()) {
    args.push_back("--cache");
    args.push_back(eng_opts.cache_dir);
  }
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv0.c_str(), argv.data());
  std::perror("cubie cluster: execv");
  std::_Exit(127);
}

// Wait until a spawned worker answers ping (its socket appears a moment
// after exec). False after ~10 s of refusals.
bool wait_for_worker(const serve::Endpoint& ep) {
  for (int i = 0; i < 200; ++i) {
    std::string err;
    if (auto c = serve::Client::connect(ep, &err)) {
      serve::Request ping;
      ping.id = "spawn-wait";
      ping.cmd = serve::Cmd::Ping;
      if (c->call(ping, &err)) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

int cmd_cluster(cluster::RouterOptions ropts, std::string argv0,
                int spawn_n, engine::EngineOptions eng_opts) {
  std::vector<SpawnedWorker> children;
  std::string spawn_dir;
  if (spawn_n > 0) {
    // argv[0] may be a bare name found via PATH; /proc/self/exe always
    // names the running binary (this is a Linux-only daemon feature).
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (n > 0) argv0.assign(exe, static_cast<std::size_t>(n));
    char tmpl[] = "/tmp/cubie-cluster-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::cerr << "cubie cluster: mkdtemp: " << std::strerror(errno) << '\n';
      return 1;
    }
    spawn_dir = tmpl;
    if (eng_opts.cache_dir.empty()) {
      // One shared disk cache is the cross-shard memo layer: a cell one
      // worker computed is a disk hit for every other worker.
      eng_opts.cache_dir = spawn_dir + "/cache";
      ::mkdir(eng_opts.cache_dir.c_str(), 0755);
    }
    for (int i = 0; i < spawn_n; ++i) {
      SpawnedWorker w;
      w.socket = spawn_dir + "/w" + std::to_string(i) + ".sock";
      w.pid = spawn_worker(argv0, w.socket, eng_opts);
      if (w.pid < 0) {
        std::cerr << "cubie cluster: fork: " << std::strerror(errno) << '\n';
        return 1;
      }
      children.push_back(w);
      ropts.workers.push_back(
          {"w" + std::to_string(i), serve::Endpoint{w.socket, -1}});
    }
    for (const auto& w : children) {
      if (!wait_for_worker(serve::Endpoint{w.socket, -1})) {
        std::cerr << "cubie cluster: spawned worker " << w.socket
                  << " never came up\n";
        for (const auto& k : children) ::kill(k.pid, SIGTERM);
        return 1;
      }
    }
    ropts.forward_shutdown = true;
  }
  ropts.engine = eng_opts;
  ropts.engine.cache_dir.clear();  // the router prices cells, never executes

  cluster::Router router(std::move(ropts));
  std::string err;
  if (!router.start(&err)) {
    std::cerr << "cubie cluster: " << err << '\n';
    for (const auto& k : children) ::kill(k.pid, SIGTERM);
    return 1;
  }
  g_router = &router;
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
  std::cerr << "cubie cluster: routing on " << router.endpoint() << " across "
            << router.workers().size() << " worker(s)"
            << (children.empty() ? "" : " [spawned]")
            << "; SIGINT or a 'shutdown' request drains\n";
  router.serve();
  g_router = nullptr;
  for (const auto& w : children) {
    int status = 0;
    ::waitpid(w.pid, &status, 0);
  }
  const auto st = router.stats();
  std::cerr << "cubie cluster: drained. " << st.completed << " completed ("
            << st.suites << " suite(s) over " << st.shards << " shard(s)), "
            << st.retries << " retr" << (st.retries == 1 ? "y" : "ies") << ", "
            << st.failovers << " failover(s), " << st.rejected_unavailable
            << " rejected-unavailable, " << st.bad_requests
            << " bad request(s)\n";
  return 0;
}

int cmd_loadgen(const serve::LoadgenOptions& lopts,
                const std::string& json_path, const std::string& tool) {
  serve::LoadgenResult res;
  std::string err;
  if (!serve::run_loadgen(lopts, res, &err)) {
    std::cerr << "cubie loadgen: " << err << '\n';
    return 1;
  }
  common::Table t({"metric", "value"});
  t.add_row({"completed", std::to_string(res.completed)});
  t.add_row({"rejected", std::to_string(res.rejected)});
  for (const auto& [code, n] : res.by_code)
    t.add_row({"  " + code, std::to_string(n)});
  t.add_row({"transport_errors", std::to_string(res.transport_errors)});
  t.add_row({"wall_s", common::fmt_double(res.wall_s, 3)});
  t.add_row({"req_per_s", common::fmt_double(res.req_per_s(), 1)});
  t.add_row({"p50_ms", common::fmt_double(res.percentile_ms(50), 3)});
  t.add_row({"p95_ms", common::fmt_double(res.percentile_ms(95), 3)});
  t.add_row({"p99_ms", common::fmt_double(res.percentile_ms(99), 3)});
  t.print(std::cout);
  if (!json_path.empty()) {
    if (!serve::loadgen_report(res, tool).write_file(json_path)) {
      std::cerr << "cannot write " << json_path << '\n';
      return 1;
    }
    if (json_path != "-") std::cerr << "[json report: " << json_path << "]\n";
  }
  if (res.completed == 0) {
    std::cerr << "cubie loadgen: no request completed\n";
    return 1;
  }
  return 0;
}

// Number lookup with a 0 default, for the stats table renderer.
double jnum(const report::Json* obj, const std::string& key) {
  if (obj == nullptr) return 0.0;
  const report::Json* v = obj->find(key);
  return v != nullptr && v->is_number() ? v->as_number() : 0.0;
}

std::string jint(const report::Json* obj, const std::string& key) {
  return std::to_string(static_cast<long long>(jnum(obj, key)));
}

// `cubie request stats` human form: the daemon's server + engine counters
// as one table. Scripts keep the raw envelope via --json.
void print_stats_table(const report::Json& resp) {
  const report::Json* srv = resp.find("server");
  const report::Json* eng = resp.find("engine");
  common::Table t({"counter", "value"});
  t.add_row({"uptime_s", common::fmt_double(jnum(srv, "uptime_s"), 1)});
  t.add_row({"connections", jint(srv, "connections")});
  t.add_row({"accepted", jint(srv, "accepted")});
  t.add_row({"started", jint(srv, "started")});
  t.add_row({"completed", jint(srv, "completed")});
  t.add_row({"max_queue_depth", jint(srv, "max_queue_depth")});
  if (const report::Json* rej = srv ? srv->find("rejections") : nullptr;
      rej != nullptr && rej->is_object()) {
    t.add_row({"rejections", ""});
    for (const auto& [code, n] : rej->members())
      t.add_row({"  " + code,
                 std::to_string(static_cast<long long>(
                     n.is_number() ? n.as_number() : 0.0))});
  }
  t.add_row({"engine_runs", jint(eng, "misses")});
  t.add_row({"engine_memo_hits", jint(eng, "memo_hits")});
  t.add_row({"engine_disk_hits", jint(eng, "disk_hits")});
  t.add_row({"engine_coalesced", jint(eng, "coalesced_hits")});
  t.add_row({"engine_cells", jint(eng, "cells")});
  t.add_row(
      {"engine_exec_ms", common::fmt_double(jnum(eng, "exec_wall_s") * 1e3, 1)});
  t.print(std::cout);
}

int cmd_request(const std::vector<serve::Endpoint>& endpoints,
                serve::Request req, const std::string& json_path,
                const serve::RetryPolicy& retry) {
  const serve::Cmd cmd = req.cmd;
  // One attempt = connect (first-healthy across the --addr list; a plain
  // connect when there is only one endpoint, preserving the single-daemon
  // wire conversation byte-for-byte) + call. Transport failures and
  // "overloaded" answers consume the retry schedule; every other error is
  // final on the first answer.
  serve::RetrySchedule sched(retry);
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<report::Json> resp;
  std::string err;
  for (;;) {
    err.clear();
    std::optional<serve::Client> client;
    if (endpoints.size() == 1)
      client = serve::Client::connect(endpoints.front(), &err);
    else
      client = serve::Client::connect_first(endpoints, &err);
    if (client) resp = client->call(req, &err);
    bool retryable = !resp;
    if (resp) {
      const report::Json* ok = resp->find("ok");
      if (ok != nullptr && ok->is_bool() && !ok->as_bool()) {
        if (const report::Json* e = resp->find("error")) {
          if (const report::Json* c = e->find("code"); c && c->is_string())
            retryable = serve::retryable_error_code(c->as_string());
        }
      }
    }
    if (!retryable) break;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const auto delay = sched.next_delay_ms(elapsed_ms);
    if (!delay) break;
    std::cerr << "cubie request: attempt " << (sched.attempts() - 1)
              << " failed (" << (resp ? "overloaded" : err) << "); retrying in "
              << common::fmt_double(*delay, 0) << " ms\n";
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(*delay));
    resp.reset();
  }
  if (!resp) {
    std::cerr << "cubie request: " << err << '\n';
    return 1;
  }
  const report::Json* ok = resp->find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    std::string code = "internal", msg;
    if (const report::Json* e = resp->find("error")) {
      if (const report::Json* c = e->find("code"); c && c->is_string())
        code = c->as_string();
      if (const report::Json* m = e->find("message"); m && m->is_string())
        msg = m->as_string();
    }
    std::cerr << "cubie request: " << code << ": " << msg << '\n';
    return 1;
  }
  // Cubie-Flight: surface the trace id this request ran under (stderr, so
  // piped stdout output stays clean) — it feeds `cubie explain` and greps
  // of --events / flight dumps.
  if (!req.trace.empty()) std::cerr << "[trace: " << req.trace << "]\n";
  if (!json_path.empty()) {
    // With a MetricsReport in the response, write just the report,
    // formatted exactly like write_file — byte-comparable (cmp) with a
    // direct `cubie run --json`. Control responses (stats, metrics, ping)
    // carry no report; write the full envelope instead so scripts can
    // still consume them machine-readably.
    const report::Json* rep = resp->find("report");
    const std::string text =
        (rep != nullptr ? rep->dump(2) : resp->dump(2)) + "\n";
    if (json_path == "-") {
      std::cout << text;
    } else {
      std::ofstream os(json_path);
      if (!os || !(os << text)) {
        std::cerr << "cannot write " << json_path << '\n';
        return 1;
      }
      std::cerr << "[json report: " << json_path << "]\n";
    }
    return 0;
  }
  if (cmd == serve::Cmd::Metrics) {
    // The raw Prometheus exposition, ready to pipe into a file or promtool.
    if (const report::Json* m = resp->find("metrics");
        m != nullptr && m->is_string()) {
      std::cout << m->as_string();
      return 0;
    }
    std::cerr << "cubie request: metrics response carried no exposition\n";
    return 1;
  }
  if (cmd == serve::Cmd::Stats) {
    print_stats_table(*resp);
    return 0;
  }
  std::cout << resp->dump(2) << '\n';
  return 0;
}

// --- cubie top -------------------------------------------------------------
// A small live dashboard over a running daemon: polls the inline `metrics`
// and `stats` commands every --interval ms and renders request rate (from
// the finished-counter delta between polls), the engine cache-hit share,
// queue depth, and latency quantiles interpolated from the
// cubie_request_latency_seconds histogram. On a TTY each frame repaints the
// screen; otherwise one block per poll, pipe-friendly. --iterations N stops
// after N frames (0 = run until interrupted).
int cmd_top(const serve::Endpoint& ep, double interval_ms, int iterations) {
  std::string err;
  auto client = serve::Client::connect(ep, &err);
  if (!client) {
    std::cerr << "cubie top: " << err << '\n';
    return 1;
  }
  const std::string where = !ep.socket_path.empty()
                                ? "unix:" + ep.socket_path
                                : "127.0.0.1:" + std::to_string(ep.tcp_port);
  const bool tty = ::isatty(::fileno(stdout)) == 1;
  using Clock = std::chrono::steady_clock;
  double prev_finished = -1.0;
  Clock::time_point prev_t = Clock::now();
  for (int frame = 0; iterations <= 0 || frame < iterations; ++frame) {
    if (frame > 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(interval_ms));
    serve::Request mreq;
    mreq.id = "top-metrics";
    mreq.cmd = serve::Cmd::Metrics;
    auto mresp = client->call(mreq, &err);
    if (!mresp) {
      std::cerr << "cubie top: " << err << '\n';
      return 1;
    }
    const report::Json* mtext = mresp->find("metrics");
    if (mtext == nullptr || !mtext->is_string()) {
      std::cerr << "cubie top: daemon answered without an exposition\n";
      return 1;
    }
    const auto exp = telemetry::parse_prometheus_text(mtext->as_string(), &err);
    if (!exp) {
      std::cerr << "cubie top: unparseable exposition: " << err << '\n';
      return 1;
    }
    serve::Request sreq;
    sreq.id = "top-stats";
    sreq.cmd = serve::Cmd::Stats;
    auto sresp = client->call(sreq, &err);
    if (!sresp) {
      std::cerr << "cubie top: " << err << '\n';
      return 1;
    }
    const report::Json* srv = sresp->find("server");

    const Clock::time_point now = Clock::now();
    const double dt = std::chrono::duration<double>(now - prev_t).count();
    const double worker = exp->value_or("cubie_requests_finished_total",
                                        {{"path", "worker"}}, 0.0);
    const double inl = exp->value_or("cubie_requests_finished_total",
                                     {{"path", "inline"}}, 0.0);
    const double finished = worker + inl;
    const double rate =
        prev_finished >= 0.0 && dt > 0.0 ? (finished - prev_finished) / dt
                                         : 0.0;
    prev_finished = finished;
    prev_t = now;

    auto cells_from = [&](const char* src) {
      return exp->value_or("cubie_cells_finished_total",
                           {{"source", src}}, 0.0);
    };
    const double compute = cells_from("compute");
    const double memo = cells_from("memo");
    const double disk = cells_from("disk");
    const double coalesced = cells_from("coalesced");
    const double cells = compute + memo + disk + coalesced;
    const double hit_pct =
        cells > 0 ? 100.0 * (cells - compute) / cells : 0.0;

    const auto lat = exp->buckets("cubie_request_latency_seconds");
    const double n_lat =
        exp->value_or("cubie_request_latency_seconds_count", {}, 0.0);
    const double p50 = telemetry::histogram_quantile(lat, 0.50) * 1e3;
    const double p95 = telemetry::histogram_quantile(lat, 0.95) * 1e3;
    const double p99 = telemetry::histogram_quantile(lat, 0.99) * 1e3;
    const double depth = exp->value_or("cubie_queue_depth", {}, 0.0);
    const double rejected =
        exp->sum_over("cubie_requests_rejected_total");

    if (tty) std::cout << "\033[H\033[2J";
    std::cout << "cubie top | " << where << " | uptime "
              << common::fmt_double(jnum(srv, "uptime_s"), 1) << " s\n"
              << "requests  " << common::fmt_double(rate, 1)
              << " req/s | finished "
              << static_cast<long long>(finished) << " (worker "
              << static_cast<long long>(worker) << ", inline "
              << static_cast<long long>(inl) << ") | rejected "
              << static_cast<long long>(rejected) << "\n"
              << "queue     depth " << static_cast<long long>(depth)
              << " (high-watermark " << jint(srv, "max_queue_depth")
              << ")\n"
              << "cells     " << static_cast<long long>(cells)
              << " | cache-hit " << common::fmt_double(hit_pct, 1)
              << "% (compute " << static_cast<long long>(compute)
              << ", memo " << static_cast<long long>(memo) << ", disk "
              << static_cast<long long>(disk) << ", coalesced "
              << static_cast<long long>(coalesced) << ")\n"
              << "latency   p50 " << common::fmt_double(p50, 3)
              << " ms  p95 " << common::fmt_double(p95, 3) << " ms  p99 "
              << common::fmt_double(p99, 3) << " ms  (n="
              << static_cast<long long>(n_lat) << ")\n";
    // Cubie-Cluster: a router's stats response carries a "workers" array —
    // render a per-worker health panel under the shared counters.
    if (const report::Json* warr = sresp->find("workers");
        warr != nullptr && warr->is_array() && warr->size() > 0) {
      const report::Json* cl = sresp->find("cluster");
      std::cout << "cluster   " << jint(cl, "workers_healthy") << "/"
                << jint(cl, "workers") << " healthy | suites "
                << jint(cl, "suites") << " | shards " << jint(cl, "shards")
                << " | retries " << jint(cl, "retries") << " | failovers "
                << jint(cl, "failovers") << " | imbalance "
                << common::fmt_double(jnum(cl, "imbalance_ratio"), 2) << "\n";
      for (std::size_t wi = 0; wi < warr->size(); ++wi) {
        const report::Json& w = warr->at(wi);
        const report::Json* name = w.find("name");
        const report::Json* endpoint = w.find("endpoint");
        const report::Json* healthy = w.find("healthy");
        const bool up =
            healthy != nullptr && healthy->is_bool() && healthy->as_bool();
        std::cout << (wi == 0 ? "workers   " : "          ")
                  << (name && name->is_string() ? name->as_string() : "?")
                  << " " << (up ? "up  " : "DOWN") << " inflight "
                  << jint(&w, "inflight") << " shards " << jint(&w, "shards")
                  << " fails " << jint(&w, "consecutive_failures") << "  ("
                  << (endpoint && endpoint->is_string() ? endpoint->as_string()
                                                        : "?")
                  << ")\n";
      }
    }
    // Cubie-Flight: the slowest recent requests, from the exemplar trace
    // ids the daemon attaches to its latency-histogram buckets — the ids
    // feed straight into `cubie explain`.
    const auto slowest = exp->exemplars("cubie_request_latency_seconds");
    for (std::size_t s = 0; s < slowest.size() && s < 3; ++s)
      std::cout << (s == 0 ? "slowest   " : "          ")
                << slowest[s].trace_id << "  "
                << common::fmt_double(slowest[s].value * 1e3, 3) << " ms\n";
    if (!tty) std::cout << '\n';
    std::cout.flush();
  }
  return 0;
}

// --- cubie flight ----------------------------------------------------------
// Dump a running daemon's Cubie-Flight recorder ring (the Cmd::Flight
// control command — answered inline, so the recent history is retrievable
// even while the workers are wedged). Default output: one compact JSON
// event object per line, oldest first — byte-identical to the
// corresponding lines of a concurrently written --events file. --json
// writes the full response envelope instead.
int cmd_flight(const serve::Endpoint& ep, const std::string& json_path) {
  std::string err;
  auto client = serve::Client::connect(ep, &err);
  if (!client) {
    std::cerr << "cubie flight: " << err << '\n';
    return 1;
  }
  serve::Request req;
  req.id = "cli-flight";
  req.cmd = serve::Cmd::Flight;
  auto resp = client->call(req, &err);
  if (!resp) {
    std::cerr << "cubie flight: " << err << '\n';
    return 1;
  }
  const report::Json* ok = resp->find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    std::cerr << "cubie flight: daemon refused the flight command\n";
    return 1;
  }
  const report::Json* events = resp->find("events");
  if (events == nullptr || !events->is_array()) {
    std::cerr << "cubie flight: response carried no events array\n";
    return 1;
  }
  if (!json_path.empty()) {
    const std::string text = resp->dump(2) + "\n";
    if (json_path == "-") {
      std::cout << text;
    } else {
      std::ofstream os(json_path);
      if (!os || !(os << text)) {
        std::cerr << "cannot write " << json_path << '\n';
        return 1;
      }
      std::cerr << "[json report: " << json_path << "]\n";
    }
    return 0;
  }
  for (std::size_t i = 0; i < events->size(); ++i)
    std::cout << events->at(i).dump(-1) << '\n';
  return 0;
}

// --- cubie explain ---------------------------------------------------------
// Reconstruct one request's timeline from a file: either a --slowlog JSONL
// (one pre-assembled cubie-slowlog timeline per line) or a --events JSONL
// (raw event stream; the trace's slice is re-assembled here). The file
// kind is detected per line, so a mixed file also works. The positional is
// a trace-id prefix; the first matching timeline wins.
int cmd_explain(const std::string& trace_prefix, const std::string& from_path,
                const std::string& json_path) {
  std::ifstream is(from_path);
  if (!is) {
    std::cerr << "cubie explain: cannot open " << from_path << '\n';
    return 1;
  }
  std::optional<telemetry::RequestTimeline> found;
  std::vector<telemetry::Event> events;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto j = report::Json::parse(line, nullptr);
    if (!j) continue;
    telemetry::RequestTimeline t;
    if (telemetry::timeline_from_json(*j, &t)) {
      if (!found && t.trace_id.rfind(trace_prefix, 0) == 0) found = std::move(t);
      continue;
    }
    telemetry::Event e;
    if (telemetry::event_from_json(*j, &e)) events.push_back(std::move(e));
  }
  if (!found) {
    auto slice = telemetry::slice_for_trace(events, trace_prefix);
    if (!slice.empty())
      found = telemetry::assemble_timeline(std::move(slice));
  }
  if (!found) {
    std::cerr << "cubie explain: no timeline for trace '" << trace_prefix
              << "' in " << from_path << '\n';
    return 1;
  }
  if (!json_path.empty()) {
    const std::string text = telemetry::timeline_to_json(*found).dump(2) + "\n";
    if (json_path == "-") {
      std::cout << text;
    } else {
      std::ofstream os(json_path);
      if (!os || !(os << text)) {
        std::cerr << "cannot write " << json_path << '\n';
        return 1;
      }
      std::cerr << "[json report: " << json_path << "]\n";
    }
    return 0;
  }
  telemetry::render_timeline(*found, std::cout);
  return 0;
}

// --- cubie roofline --------------------------------------------------------
// Modeled-vs-measured per cell: the device model's arithmetic-intensity /
// bottleneck view of each (case, variant) next to the measured IPC,
// cache-miss ratio, and task-clock from the Cubie-Pulse hardware counters.
// When perf_event_open is unavailable (unprivileged CI) the measured
// columns degrade to "-" and the typed reason is printed once.
int cmd_roofline(engine::ExperimentEngine& eng, const core::Workload& w,
                 const std::vector<core::Variant>& variants,
                 const std::vector<core::TestCase>& cases,
                 const std::vector<std::size_t>& case_ids, int scale,
                 sim::Gpu gpu, const std::string& json_path) {
  const sim::DeviceSpec& spec = sim::spec_for(gpu);
  const auto model_ptr = sim::make_device_model(eng.options().model, spec);
  const sim::DeviceModel& model = *model_ptr;
  engine::Plan plan;
  plan.scale = scale;
  plan.workloads = {w.name()};
  plan.variants = variants;
  plan.cases = engine::CaseSet::Explicit;
  plan.case_indices = case_ids;
  plan.gpus = {gpu};
  eng.execute(plan);

  const auto materialized = eng.materialized();
  auto hw_for = [&](const std::string& key) -> const hw::HwSample* {
    for (const auto& c : materialized)
      if (c.key == key) return &c.hw;
    return nullptr;
  };

  std::cout << "roofline: " << w.name() << " on " << spec.name
            << " (ridge fp64-CC "
            << common::fmt_double(spec.fp64_cc_peak / spec.dram_bw, 1)
            << " FLOP/B, fp64-TC "
            << common::fmt_double(spec.fp64_tc_peak / spec.dram_bw, 1)
            << " FLOP/B)\n\n";

  report::MetricsReport rep;
  rep.tool = "cubie_roofline";
  rep.title = "cubie roofline " + w.name();
  rep.scale_divisor = scale;

  common::Table t({"case", "variant", "AI_flop_B", "modeled_us", "bound",
                   "IPC", "miss_%", "task_ms"});
  for (std::size_t ci : case_ids) {
    const auto& tc = cases[ci];
    for (core::Variant v : variants) {
      const auto& out = eng.run(w, v, tc, scale);
      const auto pred = model.predict(out.profile);
      const double ai = out.profile.dram_bytes > 0
                            ? out.profile.useful_flops / out.profile.dram_bytes
                            : 0.0;
      // Must carry the engine's model axis or the lookup misses the
      // materialized cells under --model != analytic.
      const std::string key =
          engine::cell_key(w.name(), v, tc, scale, eng.options().model);
      const hw::HwSample* sample = hw_for(key);
      const bool measured = sample != nullptr && sample->available;
      t.add_row({tc.label, core::variant_name(v), common::fmt_double(ai, 3),
                 common::fmt_double(pred.time_s * 1e6, 2),
                 sim::bottleneck_name(pred.bound),
                 measured ? common::fmt_double(sample->ipc(), 2) : "-",
                 measured
                     ? common::fmt_double(sample->miss_ratio() * 100.0, 1)
                     : "-",
                 measured
                     ? common::fmt_double(sample->task_clock_s * 1e3, 2)
                     : "-"});
      auto& rec = rep.add_record(w.name(), core::variant_name(v), spec.name,
                                 tc.label);
      rec.set("ai_flop_per_byte", ai);
      rec.set("modeled_us", pred.time_s * 1e6);
      if (measured) {
        rec.set("ipc", sample->ipc());
        rec.set("cache_miss_ratio", sample->miss_ratio());
        rec.set("task_clock_ms", sample->task_clock_s * 1e3);
      }
    }
  }
  t.print(std::cout);
  if (!hw::available()) {
    std::cerr << "[hw counters unavailable: " << hw::unavailable_reason()
              << " — measured columns omitted]\n";
  }

  if (!json_path.empty()) {
    rep.engine = eng.stats();
    rep.hw = eng.hw_stats();
    if (!rep.write_file(json_path)) {
      std::cerr << "cannot write " << json_path << '\n';
      return 1;
    }
    if (json_path != "-") std::cerr << "[json report: " << json_path << "]\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  const bool known_cmd =
      std::find_if(std::begin(kSubcommands), std::end(kSubcommands),
                   [&](const char* c) { return cmd == c; }) !=
      std::end(kSubcommands);
  if (!known_cmd) return unknown_subcommand(cmd);

  // Common flags.
  int scale = common::scale_divisor();
  std::string variant_arg = "all", case_arg = "rep", gpu_arg = "H200";
  std::string dataset;  // optional .mtx path for the sparse workloads
  std::string json_path;
  engine::EngineOptions eng_opts;
  telemetry::SinkConfig scope;
  scope.tool = "cubie";
  bool errors = false, csv = false, check_flag = false;
  double perturb = 0.0;
  std::string history_path = telemetry::kDefaultHistoryPath;
  std::string sha, trend_metric;
  double tol = 0.10;
  // Cubie-Serve endpoint + shape.
  std::string socket_path;
  int port = -1, workers = 2, queue_limit = 16;
  int concurrency = 4, requests = 64;
  double sleep_ms = 0.0, deadline_ms = 0.0;
  // Cubie-Flight.
  std::string trace_arg;   // request: explicit trace id (default: minted)
  bool no_trace = false;   // request / loadgen: send no trace field
  int flight_size = -1;    // serve: ring capacity (-1 = default, 0 = off)
  std::string flight_dump = "cubie_flight.jsonl";  // SIGUSR2 / auto-dump
  std::string slowlog_path;  // serve: arm the slowlog when non-empty
  double slow_ms = 100.0;    // serve: slowlog threshold (<= 0: keep all)
  std::string from_path;     // explain: slowlog or events JSONL to read
  // cubie top / --metrics-out.
  double interval_ms = 1000.0;
  int iterations = 0;  // 0 = until interrupted
  bool metrics_out = false;
  // Cubie-Cluster.
  std::vector<std::string> worker_addrs;  // cluster: --worker ADDR ...
  int spawn_n = 0;                        // cluster: --spawn N
  bool cluster_loadgen = false;           // loadgen: --cluster tool naming
  std::string addr_list;                  // request: --addr A[,B,...]
  int request_retries = 0;                // request: --retries N
  double probe_interval_ms = 500.0;       // cluster: --probe-interval MS
  int unhealthy_after = 3;                // cluster: --unhealthy-after N
  // check / loadgen / request accept several positionals; every other
  // command takes at most one.
  std::vector<std::string> positionals;
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--scale") scale = std::max(1, std::atoi(next("--scale").c_str()));
    else if (args[i] == "--variant") variant_arg = next("--variant");
    else if (args[i] == "--case") case_arg = next("--case");
    else if (args[i] == "--gpu") gpu_arg = next("--gpu");
    else if (args[i] == "--dataset") dataset = next("--dataset");
    else if (args[i] == "--json") json_path = next("--json");
    else if (args[i] == "--jobs")
      eng_opts.jobs = std::max(1, std::atoi(next("--jobs").c_str()));
    else if (args[i] == "--cache") eng_opts.cache_dir = next("--cache");
    else if (args[i] == "--model") eng_opts.model = next("--model");
    else if (args[i] == "--perturb") perturb = std::atof(next("--perturb").c_str());
    else if (args[i] == "--events") scope.events_path = next("--events");
    else if (args[i] == "--trace-out") scope.trace_path = next("--trace-out");
    else if (args[i] == "--metrics-out") {
      scope.metrics_path = next("--metrics-out");
      metrics_out = true;
    }
    else if (args[i] == "--progress") scope.progress = true;
    else if (args[i] == "--progress=force") {
      scope.progress = true;
      scope.progress_force = true;
    }
    else if (args[i] == "--interval")
      interval_ms = std::max(10.0, std::atof(next("--interval").c_str()));
    else if (args[i] == "--iterations")
      iterations = std::max(0, std::atoi(next("--iterations").c_str()));
    else if (args[i] == "--history") history_path = next("--history");
    else if (args[i] == "--sha") sha = next("--sha");
    else if (args[i] == "--tol") tol = std::atof(next("--tol").c_str());
    else if (args[i] == "--metric") trend_metric = next("--metric");
    else if (args[i] == "--errors") errors = true;
    else if (args[i] == "--csv") csv = true;
    else if (args[i] == "--check") check_flag = true;
    else if (args[i] == "--socket") socket_path = next("--socket");
    else if (args[i] == "--port")
      port = std::max(0, std::atoi(next("--port").c_str()));
    else if (args[i] == "--workers")
      workers = std::max(1, std::atoi(next("--workers").c_str()));
    else if (args[i] == "--queue-limit")
      queue_limit = std::max(1, std::atoi(next("--queue-limit").c_str()));
    else if (args[i] == "--concurrency")
      concurrency = std::max(1, std::atoi(next("--concurrency").c_str()));
    else if (args[i] == "--requests")
      requests = std::max(0, std::atoi(next("--requests").c_str()));
    else if (args[i] == "--sleep-ms") sleep_ms = std::atof(next("--sleep-ms").c_str());
    else if (args[i] == "--deadline")
      deadline_ms = std::atof(next("--deadline").c_str());
    else if (args[i] == "--trace") trace_arg = next("--trace");
    else if (args[i] == "--no-trace") no_trace = true;
    else if (args[i] == "--flight-size")
      flight_size = std::max(0, std::atoi(next("--flight-size").c_str()));
    else if (args[i] == "--flight-dump") flight_dump = next("--flight-dump");
    else if (args[i] == "--slowlog") slowlog_path = next("--slowlog");
    else if (args[i] == "--slow-ms") slow_ms = std::atof(next("--slow-ms").c_str());
    else if (args[i] == "--from") from_path = next("--from");
    else if (args[i] == "--worker") worker_addrs.push_back(next("--worker"));
    else if (args[i] == "--spawn")
      spawn_n = std::max(0, std::atoi(next("--spawn").c_str()));
    else if (args[i] == "--cluster") cluster_loadgen = true;
    else if (args[i] == "--addr") addr_list = next("--addr");
    else if (args[i] == "--retries")
      request_retries = std::max(0, std::atoi(next("--retries").c_str()));
    else if (args[i] == "--probe-interval")
      probe_interval_ms =
          std::max(10.0, std::atof(next("--probe-interval").c_str()));
    else if (args[i] == "--unhealthy-after")
      unhealthy_after =
          std::max(1, std::atoi(next("--unhealthy-after").c_str()));
    else if (!args[i].empty() && args[i][0] == '-')
      return unknown_flag(cmd, args[i]);
    else positionals.push_back(args[i]);
  }
  const bool multi_positional =
      cmd == "check" || cmd == "loadgen" || cmd == "request";
  if (!multi_positional && positionals.size() > 1) {
    std::cerr << "cubie " << cmd << ": unexpected argument '" << positionals[1]
              << "'\n";
    return usage();
  }
  const std::string workload_name =
      positionals.empty() ? std::string() : positionals[0];

  // Validate --model before any engine is constructed (the engine ctor
  // throws on an unknown backend; a flag typo deserves a hint instead).
  if (sim::model_backend_description(eng_opts.model).empty()) {
    std::cerr << "cubie: unknown model backend '" << eng_opts.model << "'";
    const std::string hint = sim::suggest_model_backend(eng_opts.model);
    if (!hint.empty()) std::cerr << " (did you mean '" << hint << "'?)";
    std::cerr << " (try: cubie list)\n";
    return 2;
  }

  // The history commands never touch the engine.
  if (cmd == "record")
    return cmd_record(json_path, history_path, std::move(sha), perturb);
  if (cmd == "trend") return cmd_trend(history_path, tol, trend_metric);

  // explain is pure file readback: no engine, no daemon.
  if (cmd == "explain") {
    if (positionals.empty()) {
      std::cerr << "cubie explain needs a trace-id prefix\n";
      return 2;
    }
    if (from_path.empty()) {
      std::cerr << "cubie explain needs --from FILE "
                   "(a --slowlog or --events JSONL)\n";
      return 2;
    }
    return cmd_explain(positionals[0], from_path, json_path);
  }

  // The client commands talk to a daemon's engine, not their own.
  const serve::Endpoint ep{socket_path, port};
  if (cmd == "flight") {
    if (socket_path.empty() && port < 0) {
      std::cerr << "cubie flight needs an endpoint: --socket PATH or "
                   "--port N\n";
      return 2;
    }
    return cmd_flight(ep, json_path);
  }
  if (cmd == "top") {
    if (socket_path.empty() && port < 0) {
      std::cerr << "cubie top needs an endpoint: --socket PATH or --port N\n";
      return 2;
    }
    return cmd_top(ep, interval_ms, iterations);
  }
  if (cmd == "loadgen") {
    serve::LoadgenOptions lo;
    lo.endpoint = ep;
    lo.concurrency = concurrency;
    lo.requests = requests;
    lo.deadline_ms = deadline_ms;
    lo.trace = !no_trace;
    for (const auto& name : positionals) {
      serve::Request r;
      r.cmd = serve::Cmd::Run;
      r.spec.workload = name;
      r.spec.variant = variant_arg;
      r.spec.case_sel = case_arg;
      r.spec.gpu = gpu_arg;
      r.spec.scale = scale;
      r.spec.model = eng_opts.model;
      lo.mix.push_back(std::move(r));
    }
    if (sleep_ms > 0) {
      serve::Request r;
      r.cmd = serve::Cmd::Sleep;
      r.sleep_ms = sleep_ms;
      lo.mix.push_back(std::move(r));
    }
    if (lo.mix.empty()) {
      serve::Request r;
      r.cmd = serve::Cmd::Ping;
      lo.mix.push_back(std::move(r));
    }
    return cmd_loadgen(
        lo, json_path,
        cluster_loadgen ? "cubie_loadgen_cluster" : "cubie_loadgen");
  }
  if (cmd == "request") {
    if (positionals.empty()) {
      std::cerr << "cubie request needs a protocol cmd "
                   "(run|suite|check|stats|metrics|ping|sleep|flight|shutdown)\n";
      return 2;
    }
    const auto pc = serve::parse_cmd(positionals[0]);
    if (!pc) {
      std::cerr << "cubie request: unknown protocol cmd '" << positionals[0]
                << "' (run|suite|check|stats|metrics|ping|sleep|flight|shutdown)\n";
      return 2;
    }
    serve::Request r;
    r.id = "cli";
    r.cmd = *pc;
    if (positionals.size() > 1) r.spec.workload = positionals[1];
    r.spec.variant = variant_arg;
    r.spec.case_sel = case_arg;
    r.spec.gpu = gpu_arg;
    r.spec.scale = scale;
    r.spec.model = eng_opts.model;
    r.spec.errors = errors;
    r.spec.check = check_flag;
    r.sleep_ms = sleep_ms;
    r.deadline_ms = deadline_ms;
    // Cubie-Flight: every CLI request runs under a trace id — an explicit
    // --trace ID, or a minted one — unless --no-trace opts out (e.g. to
    // reproduce the exact pre-trace wire bytes).
    if (!no_trace) {
      if (trace_arg.empty()) {
        r.trace = telemetry::generate_trace_id();
      } else if (telemetry::valid_trace_id(trace_arg)) {
        r.trace = trace_arg;
      } else {
        std::cerr << "cubie request: --trace must be 1-32 lowercase hex "
                     "chars, got '" << trace_arg << "'\n";
        return 2;
      }
    }
    // --addr A[,B,...] lists alternative daemons (socket paths, or
    // all-digits TCP ports); the first healthy one wins. Falls back to the
    // classic --socket/--port endpoint when absent.
    std::vector<serve::Endpoint> endpoints = serve::parse_endpoints(addr_list);
    if (endpoints.empty()) endpoints.push_back(ep);
    serve::RetryPolicy retry;
    retry.max_attempts = std::max(1, request_retries + 1);
    if (deadline_ms > 0) retry.deadline_ms = deadline_ms;
    return cmd_request(endpoints, std::move(r), json_path, retry);
  }

  scope.jobs = eng_opts.jobs;
  if (cmd == "serve") {
    const telemetry::SinkSet sinks = telemetry::install(scope);
    serve::ServerOptions sopts;
    sopts.socket_path = socket_path;
    sopts.tcp_port = port;
    sopts.workers = workers;
    sopts.queue_limit = queue_limit;
    sopts.engine = eng_opts;
    if (flight_size >= 0)
      sopts.flight_capacity = static_cast<std::size_t>(flight_size);
    sopts.flight_dump_path = flight_dump;
    sopts.slowlog_path = slowlog_path;
    sopts.slow_ms = slow_ms;
    if (sopts.socket_path.empty() && sopts.tcp_port < 0) {
      std::cerr << "cubie serve needs an endpoint: --socket PATH or "
                   "--port N (0 = ephemeral)\n";
      return 2;
    }
    return cmd_serve(std::move(sopts));
  }
  if (cmd == "cluster") {
    const telemetry::SinkSet sinks = telemetry::install(scope);
    cluster::RouterOptions ropts;
    ropts.socket_path = socket_path;
    ropts.tcp_port = port;
    ropts.probe_interval_ms = probe_interval_ms;
    ropts.unhealthy_after = unhealthy_after;
    if (request_retries > 0) ropts.retry.max_attempts = request_retries + 1;
    if (flight_size >= 0)
      ropts.flight_capacity = static_cast<std::size_t>(flight_size);
    if (ropts.socket_path.empty() && ropts.tcp_port < 0) {
      std::cerr << "cubie cluster needs an endpoint: --socket PATH or "
                   "--port N (0 = ephemeral)\n";
      return 2;
    }
    if (worker_addrs.empty() == (spawn_n == 0)) {
      std::cerr << "cubie cluster needs workers: --worker ADDR (repeatable) "
                   "or --spawn N, not both\n";
      return 2;
    }
    for (std::size_t i = 0; i < worker_addrs.size(); ++i) {
      const auto eps = serve::parse_endpoints(worker_addrs[i]);
      for (const auto& wep : eps)
        ropts.workers.push_back(
            {"w" + std::to_string(ropts.workers.size()), wep});
    }
    return cmd_cluster(std::move(ropts), argv[0], spawn_n, eng_opts);
  }

  engine::ExperimentEngine eng(eng_opts);
  const telemetry::SinkSet sinks = telemetry::install(scope);
  if (cmd == "list") return cmd_list(eng);

  if (cmd == "check")
    return cmd_check(eng, positionals, scale, case_arg == "all", json_path,
                     perturb);

  if ((cmd == "cases" || cmd == "run" || cmd == "profile" ||
       cmd == "roofline") &&
      workload_name.empty()) {
    std::cerr << "cubie " << cmd << " needs a workload (try: cubie list)\n";
    return usage();
  }
  const auto* w = eng.workload(workload_name);
  if (!w) {
    std::cerr << "unknown workload '" << workload_name << "' (try: cubie list)\n";
    return 2;
  }

  if (cmd == "cases") return cmd_cases(*w, scale);

  if (cmd == "profile") {
    // Single workload / variant / case / gpu: "all" is not meaningful here.
    const auto v = parse_variant(variant_arg == "all" ? "TC" : variant_arg);
    if (!v) {
      std::cerr << "bad --variant (profile needs a single variant)\n";
      return 2;
    }
    const auto g = parse_gpu(gpu_arg);
    if (!g) {
      std::cerr << "bad --gpu (profile needs a single GPU)\n";
      return 2;
    }
    const auto cases = w->cases(scale);
    std::size_t ci = w->representative_case();
    if (case_arg != "rep" && case_arg != "all") {
      const int idx = std::atoi(case_arg.c_str());
      if (idx < 0 || static_cast<std::size_t>(idx) >= cases.size()) {
        std::cerr << "case index out of range (0.." << cases.size() - 1
                  << ")\n";
        return 2;
      }
      ci = static_cast<std::size_t>(idx);
    }
    return cmd_profile(eng, *w, *v, cases[ci], scale, *g, json_path);
  }

  // cmd == "run" or "roofline" from here on.
  int exit_code = 0;
  if (cmd == "run" && (!json_path.empty() || check_flag)) {
    // The structured path: serve::run_report, shared verbatim with the
    // Cubie-Serve daemon (byte-identical served responses).
    if (!dataset.empty()) {
      std::cerr << "cubie run: --dataset cannot be combined with --json/"
                   "--check (a custom dataset case is not Plan-expressible; "
                   "drop one of the flags)\n";
      return 2;
    }
    serve::RunSpec spec;
    spec.workload = workload_name;
    spec.variant = variant_arg;
    spec.case_sel = case_arg;
    spec.gpu = gpu_arg;
    spec.scale = scale;
    spec.model = eng_opts.model;
    spec.errors = errors;
    spec.check = check_flag;
    std::string err;
    check::ConformanceReport conf;
    std::optional<report::MetricsReport> rep;
    try {
      rep = serve::run_report(eng, spec, &err, check_flag ? &conf : nullptr);
    } catch (const engine::EngineError& ex) {
      std::cerr << "cubie run: " << ex.what() << '\n';
      return 1;
    }
    if (!rep) {
      std::cerr << "cubie run: " << err << '\n';
      return 2;
    }
    if (check_flag) {
      conf.print_summary(std::cerr);
      if (!conf.pass()) exit_code = 1;
    }
    if (!json_path.empty()) {
      // With --metrics-out the report additionally carries the "hw"
      // hardware-counter block (or its typed unavailable fallback). Only
      // then: a plain `cubie run --json` stays byte-identical to the
      // served response (the CI cmp contract).
      if (metrics_out) rep->hw = eng.hw_stats();
      if (!rep->write_file(json_path)) {
        std::cerr << "cannot write " << json_path << '\n';
        return 1;
      }
      if (json_path != "-") std::cerr << "[json report: " << json_path << "]\n";
    }
  }

  // Resolve selections.
  std::vector<core::Variant> variants;
  if (variant_arg == "all") {
    for (auto v : core::all_variants()) {
      if (v == core::Variant::Baseline && !w->has_baseline()) continue;
      if (v == core::Variant::CCE && !w->cce_distinct()) continue;
      variants.push_back(v);
    }
  } else if (auto v = parse_variant(variant_arg)) {
    variants.push_back(*v);
  } else {
    std::cerr << "bad --variant\n";
    return 2;
  }

  auto cases = w->cases(scale);
  if (!dataset.empty()) {
    if (cases.empty() || cases[0].dataset.empty()) {
      std::cerr << "--dataset applies only to dataset-driven workloads "
                   "(SpMV, SpGEMM, BFS)\n";
      return 2;
    }
    // Replace the sweep with one custom case backed by the given file.
    cases = {core::TestCase{dataset, {1}, dataset}};
    case_arg = "0";
  }
  std::vector<std::size_t> case_ids;
  if (case_arg == "all") {
    for (std::size_t i = 0; i < cases.size(); ++i) case_ids.push_back(i);
  } else if (case_arg == "rep") {
    case_ids.push_back(w->representative_case());
  } else {
    const int idx = std::atoi(case_arg.c_str());
    if (idx < 0 || static_cast<std::size_t>(idx) >= cases.size()) {
      std::cerr << "case index out of range (0.." << cases.size() - 1 << ")\n";
      return 2;
    }
    case_ids.push_back(static_cast<std::size_t>(idx));
  }

  std::vector<sim::Gpu> gpus;
  if (gpu_arg == "all") {
    gpus = sim::all_gpus();
  } else if (auto g = parse_gpu(gpu_arg)) {
    gpus.push_back(*g);
  } else {
    std::cerr << "bad --gpu\n";
    return 2;
  }

  if (cmd == "roofline") {
    if (!dataset.empty()) {
      std::cerr << "cubie roofline: --dataset is not supported (custom "
                   "cases are not Plan-expressible)\n";
      return 2;
    }
    if (gpus.size() != 1) {
      std::cerr << "roofline needs a single --gpu\n";
      return 2;
    }
    return cmd_roofline(eng, *w, variants, cases, case_ids, scale, gpus[0],
                        json_path);
  }

  std::vector<std::string> header{"gpu", "case", "variant", "time_ms",
                                  "gflops", "power_w", "energy_j", "edp",
                                  "bound"};
  if (errors) {
    header.push_back("avg_err");
    header.push_back("max_err");
  }
  common::Table t(std::move(header));

  // Warm the cell cache through a Plan so --jobs parallelism applies. A
  // custom --dataset case is not in Workload::cases() and therefore not
  // Plan-expressible; it goes straight through engine.run below.
  if (dataset.empty()) {
    engine::Plan plan;
    plan.scale = scale;
    plan.workloads = {w->name()};
    plan.variants = variants;
    plan.cases = engine::CaseSet::Explicit;
    plan.case_indices = case_ids;
    plan.gpus = gpus;
    eng.execute(plan);
  }

  for (std::size_t ci : case_ids) {
    const auto& tc = cases[ci];
    std::vector<double> ref;
    if (errors) ref = w->reference(tc);
    for (auto v : variants) {
      const auto& out = eng.run(*w, v, tc, scale);
      for (auto g : gpus) {
        const auto model =
            sim::make_device_model(eng_opts.model, sim::spec_for(g));
        const auto pred = model->predict(out.profile);
        std::vector<std::string> row{
            sim::gpu_name(g), tc.label, core::variant_name(v),
            common::fmt_double(pred.time_s * 1e3, 4),
            common::fmt_double(out.profile.useful_flops / pred.time_s / 1e9, 1),
            common::fmt_double(pred.avg_power_w, 0),
            common::fmt_sci(pred.energy_j), common::fmt_sci(pred.edp),
            sim::bottleneck_name(pred.bound)};
        if (errors) {
          const auto e = common::error_stats(out.values, ref);
          row.push_back(common::fmt_sci(e.avg));
          row.push_back(common::fmt_sci(e.max));
        }
        t.add_row(std::move(row));
      }
    }
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  const auto ec = eng.counters();
  std::cerr << "[engine: " << ec.misses << " run(s), " << ec.memo_hits
            << " memo hit(s), " << ec.disk_hits << " disk hit(s), "
            << common::fmt_double(ec.exec_wall_s * 1e3, 1) << " ms exec]\n";
  return exit_code;
}
