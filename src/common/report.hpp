#pragma once
// Cubie-Trace reporting: a dependency-free JSON value (writer + parser) and
// the MetricsReport schema every bench binary emits behind `--json <path>`.
//
// Schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "tool":   "<bench binary name>",
//     "title":  "<human title>",
//     "scale_divisor": <int>,
//     "records": [
//       {"workload": "...", "variant": "...", "gpu": "...", "case": "...",
//        "metrics": {"<name>": <number>, ...}},
//       ...
//     ],
//     "tables": [
//       {"name": "...", "columns": ["...", ...], "rows": [["...", ...], ...]},
//       ...
//     ],
//     "traces": [ <trace node>, ... ],  // only when tracing was on
//     "engine": {"cells": N, "memo_hits": N, "disk_hits": N,
//                "coalesced_hits": N, "misses": N,
//                "exec_wall_s": S, "max_cell_wall_s": S},
//                                       // only when Cubie-Engine executed
//     "hw": {"available": true, "cells": N, "cycles": N, "instructions": N,
//            "cache_references": N, "cache_misses": N, "task_clock_s": S}
//           // or {"available": false, "reason": "..."} when perf_event_open
//           // is unpermitted; only when the producer attached hw counters
//   }
// A trace node is {"name", "wall_s", "peak_rss_kb"?, "profile": {...},
// "children": [...]}; peak_rss_kb is optional and omitted when the platform
// could not measure it (readers default it to 0).
// Consumers must ignore unknown keys; producers may only
// add keys (bump schema_version for anything else). tools/bench_diff
// compares two such files record by record (see docs/OBSERVABILITY.md).

#include "common/metrics.hpp"
#include "sim/model.hpp"
#include "sim/profile.hpp"
#include "sim/trace.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cubie::report {

// ---------------------------------------------------------------------------
// Json: a minimal ordered value tree. Objects preserve insertion order so
// serialized reports are stable (golden-file friendly).
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() = default;  // null
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  // Array access.
  std::size_t size() const;  // elements (array) or members (object)
  const Json& at(std::size_t i) const { return items_[i].second; }
  void push_back(Json v);

  // Object access. operator[] inserts a null member on first use.
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;  // nullptr if absent
  const std::vector<std::pair<std::string, Json>>& members() const {
    return items_;
  }

  // Serialize. indent < 0 emits compact single-line JSON; otherwise
  // pretty-print with `indent` spaces per level.
  std::string dump(int indent = 2) const;

  // Parse a complete JSON document; nullopt (with *error set when given)
  // on malformed input or trailing garbage.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Array elements (first empty) or object members, in insertion order.
  std::vector<std::pair<std::string, Json>> items_;
};

std::string json_escape(const std::string& s);

// ---------------------------------------------------------------------------
// MetricsReport: the structured payload behind `--json`.

struct MetricRecord {
  std::string workload;
  std::string variant;
  std::string gpu;
  std::string case_label;
  // Insertion-ordered metric name -> value.
  std::vector<std::pair<std::string, double>> metrics;

  void set(const std::string& name, double value);
  const double* get(const std::string& name) const;  // nullptr if absent
  // Identity used to match records across two reports.
  std::string key() const;
};

// Cubie-Engine execution counters, exported as the report's "engine" block
// (see src/engine/engine.hpp). `misses` counts functional cell executions
// in the producing process; `memo_hits`/`disk_hits` count requests served
// from the in-process and on-disk cell caches. Wall-clock fields measure
// host time inside Workload::run — the engine's own overhead is everything
// the report's modeled times do not account for.
struct EngineStats {
  double cells = 0.0;      // unique cells materialized in the process
  double memo_hits = 0.0;
  double disk_hits = 0.0;
  // Requests served by another thread's in-flight computation of the same
  // cell (single-flight coalescing; Cubie-Serve's concurrency guarantee).
  double coalesced_hits = 0.0;
  double misses = 0.0;
  double traced_reruns = 0.0;  // traced re-runs of already-memoized cells
  double disk_errors = 0.0;    // unusable/unwritable disk-cache files
  double exec_wall_s = 0.0;
  double max_cell_wall_s = 0.0;
};

// Measured hardware-counter totals over the computed cells of a run, the
// report's optional "hw" block (Cubie-Pulse; src/common/hwcounters.hpp).
// When perf_event_open is unpermitted the block degrades to the typed
// fallback {"available": false, "reason": "..."} — still present, still
// byte-identical through a parse/serialize round trip.
struct HwStats {
  bool available = false;
  std::string unavailable_reason;  // set only when !available
  double cells = 0.0;              // computed cells sampled
  double cycles = 0.0;
  double instructions = 0.0;
  double cache_references = 0.0;
  double cache_misses = 0.0;
  double task_clock_s = 0.0;       // on-CPU seconds inside sampled cells
};

struct MetricsReport {
  static constexpr int kSchemaVersion = 1;

  std::string tool;
  std::string title;
  int scale_divisor = 1;
  std::vector<MetricRecord> records;
  // Captured human-readable tables: (name, columns, rows).
  struct CapturedTable {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<CapturedTable> tables;
  std::vector<sim::TraceNode> traces;
  // Engine execution counters; absent when the producer ran no cells
  // through Cubie-Engine (the block is then omitted from the JSON).
  std::optional<EngineStats> engine;
  // Hardware-counter totals (or the typed unavailable fallback); absent
  // unless the producer attached them (--metrics-out runs, cubie profile).
  std::optional<HwStats> hw;

  // Find-or-create the record with this (workload, variant, gpu, case) key.
  // The returned reference is invalidated by the next add_record call -
  // finish setting a record's metrics before starting the next one.
  MetricRecord& add_record(std::string workload, std::string variant,
                           std::string gpu, std::string case_label);

  Json to_json() const;
  // Parse back the full report: metadata, records, captured tables, and
  // trace trees (including per-span profiles).
  static std::optional<MetricsReport> from_json(const Json& j,
                                                std::string* error = nullptr);

  // Write to `path` ("-" = stdout). Returns false on I/O failure.
  bool write_file(const std::string& path) const;
  static std::optional<MetricsReport> read_file(const std::string& path,
                                                std::string* error = nullptr);
};

// True if a smaller value of this metric is better. Time-, energy-, and
// error-like quantities regress upward; everything else (throughput,
// speedup, utilization, coverage) regresses downward. Shared by
// tools/bench_diff and the bench-history trend comparator
// (src/telemetry/history.hpp) so both judge regressions identically.
bool lower_is_better(const std::string& metric_name);

// Serialization helpers shared by the report and the CLI profile printer.
Json to_json(const sim::KernelProfile& p);
Json to_json(const sim::Prediction& p);
Json to_json(const common::ErrorStats& e);
Json to_json(const sim::TraceNode& n);
Json to_json(const EngineStats& s);
Json to_json(const HwStats& s);
// Inverse of to_json(KernelProfile); missing fields take their defaults.
// Shared with the engine's disk cell cache (src/engine/cache.cpp).
sim::KernelProfile profile_from_json(const Json& j);

}  // namespace cubie::report
