#pragma once
// Warp-level MMA emulation and event counting.
//
// A Context binds an execution pipe (tensor core vs. CUDA core) to a
// KernelProfile. Workload code issues MMA operations, memory accounting, and
// scalar work through the Context; the functional arithmetic is *identical*
// for both pipes - only the counted events differ. This construction makes
// the paper's Table 6 observation ("TC and CC produce identical errors")
// hold by design, exactly as on real hardware where the CC replacement
// preserves the per-lane data layout and FMA order.
//
// Numerical semantics of dmma (FP64 m8n8k4):
//   d[i][j] = fma(a[i][3], b[3][j],
//             fma(a[i][2], b[2][j],
//             fma(a[i][1], b[1][j],
//             fma(a[i][0], b[0][j], c[i][j]))))
// i.e. a k-major chain of fused multiply-adds seeded with the accumulator,
// matching NVIDIA's documented DMMA behaviour (each partial product is
// accumulated in full FP64 precision with one rounding per FMA).

#include "mma/fragment.hpp"
#include "sim/profile.hpp"

#include <cstdint>

namespace cubie::mma {

enum class Pipe { TensorCore, CudaCore };

class Context {
 public:
  Context(Pipe pipe, sim::KernelProfile& prof) : pipe_(pipe), prof_(&prof) {}

  Pipe pipe() const { return pipe_; }
  sim::KernelProfile& profile() { return *prof_; }

  // ---- MMA instructions ----------------------------------------------------
  // D = C + A*B. Row-major flat operands: a is 8x4, b is 4x8, c/d are 8x8.
  // d may alias c.
  void dmma_m8n8k4(const double* a, const double* b, const double* c,
                   double* d);

  // C += A*B (accumulator in registers across k-tiles, the common GEMM use).
  void dmma_m8n8k4_acc(const double* a, const double* b, double* c_inout);

  // 8x8 x 8x8 product C += A*B, composed of two chained m8n8k4 MMAs
  // (k = 0..3 then k = 4..7), the composition Scan/Reduction use.
  void dmma_m8n8k8_acc(const double* a, const double* b, double* c_inout);

  // Single-bit MMA (BFS): A is 8x128 bits (8 rows x 4 words), B is 128x8
  // bits stored column-major (8 columns x 4 words). For each (i,j):
  //   d[i][j] += popcount(A_row_i AND B_col_j)
  void bmma_m8n8k128_and_popc_acc(const std::uint32_t* a_words,
                                  const std::uint32_t* b_words,
                                  std::uint32_t* d);

  // ---- Memory accounting -----------------------------------------------------
  void load_global(double bytes);
  void store_global(double bytes);
  void load_shared(double bytes);
  void store_shared(double bytes);

  // ---- Scalar CUDA-core work (baselines, CC-E, epilogues) --------------------
  void cc_fma(double count);    // fused multiply-adds: 2 FLOPs each
  void cc_flop(double count);   // single add/mul
  void cc_int(double count);    // integer / logic ops

  // ---- Launch shape -----------------------------------------------------------
  void launch(double threads);

 private:
  void count_dmma();  // per-m8n8k4 event accounting

  Pipe pipe_;
  sim::KernelProfile* prof_;
};

}  // namespace cubie::mma
