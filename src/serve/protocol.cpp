#include "serve/protocol.hpp"

#include <utility>

namespace cubie::serve {

using report::Json;

const char* cmd_name(Cmd c) {
  switch (c) {
    case Cmd::Run: return "run";
    case Cmd::Suite: return "suite";
    case Cmd::Check: return "check";
    case Cmd::Stats: return "stats";
    case Cmd::Metrics: return "metrics";
    case Cmd::Ping: return "ping";
    case Cmd::Sleep: return "sleep";
    case Cmd::Flight: return "flight";
    case Cmd::Shutdown: return "shutdown";
  }
  return "unknown";
}

std::optional<Cmd> parse_cmd(const std::string& s) {
  if (s == "run") return Cmd::Run;
  if (s == "suite") return Cmd::Suite;
  if (s == "check") return Cmd::Check;
  if (s == "stats") return Cmd::Stats;
  if (s == "metrics") return Cmd::Metrics;
  if (s == "ping") return Cmd::Ping;
  if (s == "sleep") return Cmd::Sleep;
  if (s == "flight") return Cmd::Flight;
  if (s == "shutdown") return Cmd::Shutdown;
  return std::nullopt;
}

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

std::string request_key(const Request& r) {
  switch (r.cmd) {
    case Cmd::Run:
    case Cmd::Check:
      return std::string(cmd_name(r.cmd)) + " " + spec_key(r.spec);
    case Cmd::Suite:
      // A sharded suite shows its cell count so router fan-out shards are
      // distinguishable from full suites in telemetry; the plain form is
      // unchanged.
      return r.cells.empty()
                 ? "suite s" + std::to_string(r.spec.scale)
                 : "suite s" + std::to_string(r.spec.scale) + " shard[" +
                       std::to_string(r.cells.size()) + "]";
    default:
      return cmd_name(r.cmd);
  }
}

namespace {

const std::string* get_string(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return v != nullptr && v->is_string() ? &v->as_string() : nullptr;
}

}  // namespace

std::optional<Request> parse_request(const std::string& line,
                                     std::string* error) {
  std::string parse_err;
  auto j = Json::parse(line, &parse_err);
  if (!j) {
    if (error) *error = "malformed JSON: " + parse_err;
    return std::nullopt;
  }
  if (!j->is_object()) {
    if (error) *error = "request must be a JSON object";
    return std::nullopt;
  }
  Request r;
  if (const auto* id = get_string(*j, "id")) r.id = *id;
  const auto* cmd = get_string(*j, "cmd");
  if (cmd == nullptr) {
    if (error) *error = "missing required field 'cmd'";
    return std::nullopt;
  }
  const auto parsed = parse_cmd(*cmd);
  if (!parsed) {
    if (error) *error = "unknown cmd '" + *cmd + "'";
    return std::nullopt;
  }
  r.cmd = *parsed;
  if (const auto* w = get_string(*j, "workload")) r.spec.workload = *w;
  if (const auto* v = get_string(*j, "variant")) r.spec.variant = *v;
  if (const auto* c = get_string(*j, "case")) r.spec.case_sel = *c;
  if (const auto* g = get_string(*j, "gpu")) r.spec.gpu = *g;
  if (const auto* m = get_string(*j, "model")) r.spec.model = *m;
  if (const Json* s = j->find("scale"); s != nullptr && s->is_number())
    r.spec.scale = s->as_number() >= 1 ? static_cast<int>(s->as_number()) : 1;
  if (const Json* e = j->find("errors"); e != nullptr && e->is_bool())
    r.spec.errors = e->as_bool();
  if (const Json* c = j->find("check"); c != nullptr && c->is_bool())
    r.spec.check = c->as_bool();
  if (const Json* m = j->find("ms"); m != nullptr && m->is_number())
    r.sleep_ms = m->as_number();
  if (const Json* d = j->find("deadline_ms"); d != nullptr && d->is_number())
    r.deadline_ms = d->as_number();
  if (const auto* t = get_string(*j, "trace")) r.trace = *t;
  if (const Json* cells = j->find("cells"); cells != nullptr) {
    if (r.cmd != Cmd::Suite) {
      if (error) *error = "'cells' is only valid on cmd 'suite'";
      return std::nullopt;
    }
    if (!cells->is_array()) {
      if (error) *error = "'cells' must be an array";
      return std::nullopt;
    }
    for (std::size_t i = 0; i < cells->size(); ++i) {
      const Json& c = cells->at(i);
      const auto* w = c.is_object() ? get_string(c, "workload") : nullptr;
      const auto* v = c.is_object() ? get_string(c, "variant") : nullptr;
      const Json* ci = c.is_object() ? c.find("case") : nullptr;
      if (w == nullptr || v == nullptr || ci == nullptr ||
          !ci->is_number() || ci->as_number() < 0) {
        if (error)
          *error = "cells[" + std::to_string(i) +
                   "] needs 'workload', 'case' (index >= 0), and 'variant'";
        return std::nullopt;
      }
      ShardCell sc;
      sc.workload = *w;
      sc.case_index = static_cast<int>(ci->as_number());
      sc.variant = *v;
      r.cells.push_back(std::move(sc));
    }
  }
  if ((r.cmd == Cmd::Run || r.cmd == Cmd::Check) && r.spec.workload.empty()) {
    if (error) *error = "cmd '" + std::string(cmd_name(r.cmd)) +
                        "' needs a 'workload'";
    return std::nullopt;
  }
  return r;
}

Json request_to_json(const Request& r) {
  Json j = Json::object();
  if (!r.id.empty()) j["id"] = Json::string(r.id);
  j["cmd"] = Json::string(cmd_name(r.cmd));
  if (r.cmd == Cmd::Run || r.cmd == Cmd::Check || r.cmd == Cmd::Suite) {
    if (!r.spec.workload.empty())
      j["workload"] = Json::string(r.spec.workload);
    j["variant"] = Json::string(r.spec.variant);
    j["case"] = Json::string(r.spec.case_sel);
    j["gpu"] = Json::string(r.spec.gpu);
    // Wire stability: the model axis appears only when non-default, so
    // serialized requests from older clients round-trip unchanged.
    if (r.spec.model != "analytic") j["model"] = Json::string(r.spec.model);
    j["scale"] = Json::number(r.spec.scale);
    if (r.spec.errors) j["errors"] = Json::boolean(true);
    if (r.spec.check) j["check"] = Json::boolean(true);
  }
  // Cubie-Cluster shards: like "model" and "trace", the field rides only
  // when present, so full-suite requests keep their pre-cluster bytes.
  if (r.cmd == Cmd::Suite && !r.cells.empty()) {
    Json cells = Json::array();
    for (const auto& c : r.cells) {
      Json cell = Json::object();
      cell["workload"] = Json::string(c.workload);
      cell["case"] = Json::number(c.case_index);
      cell["variant"] = Json::string(c.variant);
      cells.push_back(std::move(cell));
    }
    j["cells"] = std::move(cells);
  }
  if (r.cmd == Cmd::Sleep) j["ms"] = Json::number(r.sleep_ms);
  if (r.deadline_ms > 0) j["deadline_ms"] = Json::number(r.deadline_ms);
  // Like "model": the trace field rides only when present, keeping the
  // pre-Cubie-Flight wire bytes for clients that do not trace.
  if (!r.trace.empty()) j["trace"] = Json::string(r.trace);
  return j;
}

namespace {

Json envelope(const std::string& id, bool ok, const std::string& trace) {
  Json j = Json::object();
  j["id"] = Json::string(id);
  j["ok"] = Json::boolean(ok);
  j["protocol_version"] = Json::number(kProtocolVersion);
  if (!trace.empty()) j["trace"] = Json::string(trace);
  return j;
}

}  // namespace

std::string ok_line(const std::string& id, Json body,
                    const std::string& trace) {
  Json j = envelope(id, true, trace);
  for (auto& [k, v] : body.members()) j[k] = v;
  return j.dump(-1);
}

std::string report_line(const std::string& id,
                        const report::MetricsReport& rep,
                        const report::EngineStats& engine,
                        std::optional<bool> check_pass,
                        const std::string& trace) {
  Json j = envelope(id, true, trace);
  j["report"] = rep.to_json();
  j["engine"] = report::to_json(engine);
  if (check_pass) j["check_pass"] = Json::boolean(*check_pass);
  return j.dump(-1);
}

std::string error_line(const std::string& id, ErrorCode code,
                       const std::string& message,
                       const std::string& trace) {
  Json j = envelope(id, false, trace);
  Json err = Json::object();
  err["code"] = Json::string(error_code_name(code));
  err["message"] = Json::string(message);
  j["error"] = std::move(err);
  return j.dump(-1);
}

}  // namespace cubie::serve
