#pragma once
// Synthetic graph generators standing in for the five SuiteSparse graphs of
// Table 3 (offline environment; see DESIGN.md). Each generator reproduces
// the structural family of its target: Kronecker/RMAT for kron_g500-logn21
// and the social graph com-Orkut, an exact Mycielskian construction for
// mycielskian17, and a host-block web-crawl model for wikipedia-20070206 and
// wb-edu. Scale is configurable; defaults are reduced for the single-core
// simulator.

#include "graph/graph.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace cubie::graph {

// RMAT/Kronecker generator (Graph500 parameters a=0.57 b=0.19 c=0.19).
Graph gen_rmat(int scale, int edge_factor, double a, double b, double c,
               std::uint32_t seed);

// Exact Mycielskian: mycielskian(k) is M_k in the SuiteSparse naming, built
// by iterating the Mycielski construction from M_2 = K_2. Vertices: 3*2^(k-2) - 1.
Graph gen_mycielskian(int k);

// Web-crawl model: pages grouped into hosts; dense intra-host links plus
// sparse cross-host links, power-law out-degree.
Graph gen_web(int n, int host_size, double avg_degree, std::uint32_t seed);

// Social-network model: RMAT skew plus random closure edges (higher
// clustering), symmetrized.
Graph gen_social(int n, double avg_degree, std::uint32_t seed);

struct NamedGraph {
  std::string name;
  std::string group;
  Graph graph;
};

std::vector<std::string> table3_names();
// Scaled stand-in for one Table 3 instance; `scale_divisor` divides the
// vertex count (Mycielskian scales by lowering k). If `name` is a Matrix
// Market file path, the real graph is loaded (entries as symmetrized edges).
NamedGraph make_table3_graph(const std::string& name, int scale_divisor);

// Corpus for the Figure 10a PCA ("the 499 graphs in SuiteSparse").
std::vector<NamedGraph> synthetic_graph_corpus(int count, std::uint32_t seed);

}  // namespace cubie::graph
