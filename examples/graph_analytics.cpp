// Graph analytics with the BerryBees bitmap BFS: single-source shortest
// hop distances, level histogram, eccentricity estimate, and connectivity -
// over the slice-set representation that backs the BFS workload.
//
//   $ ./graph_analytics [table3-name|rmat] [scale-divisor]

#include "common/table.hpp"
#include "graph/bitmap.hpp"
#include "graph/generators.hpp"

#include <algorithm>
#include <iostream>
#include <map>
#include <string>

int main(int argc, char** argv) {
  using namespace cubie;
  const std::string which = argc > 1 ? argv[1] : "kron_g500-logn21";
  const int scale = argc > 2 ? std::atoi(argv[2]) : 16;

  graph::Graph g;
  if (which == "rmat") {
    g = graph::gen_rmat(14, 16, 0.57, 0.19, 0.19, 7);
  } else {
    g = graph::make_table3_graph(which, scale).graph;
  }
  const auto s = graph::slice_set_from_graph(g);

  std::cout << "Graph: " << which << "\n"
            << "  vertices: " << g.n << ", directed edges: " << g.edges()
            << "\n  slice-set blocks: " << s.stored_blocks()
            << " (bit fill " << common::fmt_double(s.bit_fill() * 100.0, 2)
            << "%, footprint " << common::fmt_si(s.bytes(), 3) << "B vs CSR "
            << common::fmt_si(static_cast<double>(g.edges()) * 4.0, 3)
            << "B)\n\n";

  // BFS from the highest-degree vertex (a typical analytics root).
  int root = 0;
  for (int v = 1; v < g.n; ++v)
    if (g.degree(v) > g.degree(root)) root = v;
  const auto levels = graph::bfs_serial(g, root);

  std::map<int, int> histogram;
  int reached = 0, ecc = 0;
  for (int l : levels) {
    if (l >= 0) {
      histogram[l] += 1;
      ++reached;
      ecc = std::max(ecc, l);
    }
  }
  std::cout << "BFS from vertex " << root << " (degree " << g.degree(root)
            << "):\n"
            << "  reached " << reached << "/" << g.n << " vertices ("
            << common::fmt_double(100.0 * reached / g.n, 1)
            << "%), eccentricity " << ecc << "\n\n";

  common::Table t({"level", "vertices", "cumulative %"});
  int cum = 0;
  for (const auto& [lvl, cnt] : histogram) {
    cum += cnt;
    t.add_row({std::to_string(lvl), std::to_string(cnt),
               common::fmt_double(100.0 * cum / g.n, 1)});
  }
  t.print(std::cout);
  return 0;
}
