#pragma once
// Lane-level warp execution of the CC MMA replacement.
//
// The paper's CC variant (Section 5.2) "preserves the same thread
// responsibilities and data layouts" as the tensor-core MMA: each of the 32
// lanes owns its PTX fragment elements (fragment.hpp) and must gather the
// operands it needs from the owning lanes via shuffles. This module
// implements that execution literally - a Warp of 32 lane register sets, a
// __shfl_sync equivalent, and the per-lane FMA program - so the claim that
// the CC replacement is numerically identical to the MMA (and the
// instruction-count calibration in sim/calibration.hpp) can be *verified*
// rather than assumed. See tests/test_warp.cpp.

#include "mma/fragment.hpp"
#include "sim/profile.hpp"

#include <array>
#include <cstdint>

namespace cubie::mma {

// Register state of one warp: each lane holds its fragment registers.
struct WarpRegisters {
  // Lane i's A element (a[row][k] with row = i/4, k = i%4).
  std::array<double, kWarpSize> a{};
  // Lane i's B element (b[k][col] with k = i%4, col = i/4).
  std::array<double, kWarpSize> b{};
  // Lane i's two C/D elements (row = i/4, col = (i%4)*2 + r).
  std::array<double, kWarpSize> c0{};
  std::array<double, kWarpSize> c1{};
};

// Instruction-level statistics of a warp program execution.
struct WarpStats {
  std::uint64_t fma_instructions = 0;      // warp-wide FMA issues
  std::uint64_t shuffle_instructions = 0;  // warp-wide __shfl_sync issues
  std::uint64_t total() const { return fma_instructions + shuffle_instructions; }
};

// Scatter row-major operands into per-lane fragments (the layout a
// ldmatrix-style load produces).
WarpRegisters load_fragments(const double* a_rowmajor_8x4,
                             const double* b_rowmajor_4x8,
                             const double* c_rowmajor_8x8);

// Gather the D fragment back to a row-major 8x8 matrix.
void store_fragments(const WarpRegisters& regs, double* d_rowmajor_8x8);

// Execute D = C + A*B entirely with per-lane scalar FMAs and shuffles,
// preserving the DMMA accumulation order (k-major FMA chain). Updates
// `regs` in place (c0/c1 become the D fragment) and returns the
// instruction counts. If `prof` is given, the work is counted on the
// CUDA-core pipe exactly as the analytic model expects.
WarpStats cc_mma_m8n8k4(WarpRegisters& regs, sim::KernelProfile* prof = nullptr);

// The lane-level emulation of __shfl_sync: every lane reads `src[lane]`
// selected by its own index vector. One warp instruction.
void shfl_sync(const std::array<double, kWarpSize>& src,
               const std::array<int, kWarpSize>& lane_of,
               std::array<double, kWarpSize>& dst, WarpStats& stats);

}  // namespace cubie::mma
