// Ablation: the occupancy / launch-overhead rolloff of the device model.
// Sweeps resident threads for a fixed compute-bound and a fixed memory-bound
// profile and reports sustained fraction of peak - the knee that produces
// the small-case rise in every Figure 3 subplot. Documents the model's
// kSaturationFraction / sqrt-rolloff choices (DESIGN.md Section 5).

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/calibration.hpp"
#include "sim/model.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_occupancy",
      "Ablation: occupancy rolloff and launch overhead");
  std::cout << "=== Ablation: occupancy rolloff and launch overhead ===\n\n";
  for (auto g : sim::all_gpus()) {
    const auto model = bench.model_for(g);
    const auto& d = model->spec();
    std::cout << d.name << " (saturation at "
              << static_cast<long>(d.max_threads * sim::cal::kSaturationFraction)
              << " threads, launch " << d.launch_overhead_s * 1e6
              << " us):\n";
    common::Table t({"threads", "compute-bound % of peak",
                     "memory-bound % of peak BW"});
    for (double threads : {128.0, 512.0, 2048.0, 8192.0, 32768.0, 131072.0}) {
      sim::KernelProfile flop;
      flop.tc_flops = 1e9;  // large enough to dwarf launch overhead
      flop.threads = threads;
      flop.launches = 1;
      const double t_flop = model->predict(flop).time_s;
      const double pct_flop =
          100.0 * (flop.tc_flops / d.fp64_tc_peak) / t_flop;

      sim::KernelProfile mem;
      mem.dram_bytes = 1e8;
      mem.threads = threads;
      mem.launches = 1;
      const double t_mem = model->predict(mem).time_s;
      const double pct_mem = 100.0 * (mem.dram_bytes / d.dram_bw) / t_mem;

      t.add_row({common::fmt_si(threads, 3),
                 common::fmt_double(pct_flop, 1),
                 common::fmt_double(pct_mem, 1)});
      auto& rec = bench.record("occupancy", "", d.name,
                               "threads=" + common::fmt_si(threads, 3));
      rec.set("compute_pct_of_peak", pct_flop);
      rec.set("memory_pct_of_peak_bw", pct_mem);
    }
    t.print(std::cout);
    bench.capture(std::string("occupancy_") + d.name, t);

    // Launch-overhead floor: time of a near-empty kernel.
    sim::KernelProfile tiny;
    tiny.cc_flops = 32.0;
    tiny.threads = 32.0;
    tiny.launches = 1;
    const double floor_us = model->predict(tiny).time_s * 1e6;
    std::cout << "  empty-kernel floor: " << common::fmt_double(floor_us, 2)
              << " us\n\n";
    bench.record("occupancy", "", d.name, "empty kernel")
        .set("floor_us", floor_us);
  }
  return bench.finish();
}
