file(REMOVE_RECURSE
  "CMakeFiles/ablation_no_fp64_mmu.dir/ablation_no_fp64_mmu.cpp.o"
  "CMakeFiles/ablation_no_fp64_mmu.dir/ablation_no_fp64_mmu.cpp.o.d"
  "ablation_no_fp64_mmu"
  "ablation_no_fp64_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_no_fp64_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
