#pragma once
// Cubie-Engine: memoized, optionally parallel execution of experiment
// Plans. One engine instance per process unifies suite execution across
// the bench binaries, the CLI, and the tests:
//
//   * every unique cell (workload, variant, case, scale) is functionally
//     executed at most once per process — an in-process content-keyed
//     cache serves repeated requests (e.g. per-GPU pricing loops);
//   * with a cache directory configured, cells persist across processes
//     via engine::DiskCache, so consecutive bench runs share work;
//   * Plan execution can fan out over a thread pool (`jobs`); results are
//     bit-identical to serial order because each cell's run is
//     deterministic (per-cell seeded RNG) and pricing happens afterwards,
//     serially, in the caller's iteration order.
//
// Hit/miss and wall-clock counters are exported through the Cubie-Trace
// MetricsReport ("engine" block) so `cubie profile` and every bench's
// --json report show what the engine did. See docs/ARCHITECTURE.md.

#include "core/kernels.hpp"
#include "core/workload.hpp"
#include "engine/cache.hpp"
#include "engine/plan.hpp"
#include "sim/trace.hpp"

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace cubie::report {
struct EngineStats;
}

namespace cubie::engine {

struct EngineOptions {
  int jobs = 1;           // thread-pool width for Plan execution
  std::string cache_dir;  // empty = no disk persistence
};

// Process-lifetime counters (see report::EngineStats for the exported form).
struct EngineCounters {
  std::size_t memo_hits = 0;   // served from the in-process cell cache
  std::size_t disk_hits = 0;   // served from the disk cache
  std::size_t misses = 0;      // functional executions in this process
  double exec_wall_s = 0.0;    // host wall-clock spent inside Workload::run
  double max_cell_wall_s = 0.0;  // slowest single cell
};

class ExperimentEngine {
 public:
  ExperimentEngine();
  explicit ExperimentEngine(EngineOptions opts);
  ~ExperimentEngine();

  ExperimentEngine(ExperimentEngine&&) noexcept;
  ExperimentEngine& operator=(ExperimentEngine&&) noexcept;
  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  const EngineOptions& options() const { return opts_; }

  // The registry suite, constructed once and owned by the engine.
  const std::vector<core::WorkloadPtr>& suite();
  // Case-insensitive name lookup into the engine-owned suite; nullptr if
  // unknown.
  const core::Workload* workload(const std::string& name);

  // Memoized execution of one cell. The returned reference stays valid for
  // the engine's lifetime. Thread-safe.
  const core::RunOutput& run(const core::Workload& w, core::Variant v,
                             const core::TestCase& tc, int scale);

  // Traced execution: always runs (a memoized result has no spans to
  // record), stores the result in the cell cache afterwards. Counted as a
  // miss in the engine statistics.
  const core::RunOutput& run_traced(const core::Workload& w, core::Variant v,
                                    const core::TestCase& tc, int scale,
                                    sim::Tracer& tracer);

  // Expand a Plan into its unique cells, in deterministic
  // (workload, case, variant) order. Unknown workload names are skipped.
  std::vector<Cell> expand(const Plan& p);

  // Execute every cell of the Plan (opts.jobs threads), warming the cell
  // cache. Returns the number of unique cells.
  std::size_t execute(const Plan& p);

  EngineCounters counters() const;
  // Counters in the MetricsReport exchange form ("engine" block).
  report::EngineStats stats() const;
  // True once any cell has been requested (hit or miss).
  bool active() const;

 private:
  struct Impl;
  EngineOptions opts_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cubie::engine
