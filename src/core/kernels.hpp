#pragma once
// Factories for the ten Cubie workloads (Table 2) and the full-suite
// registry. Each factory returns a self-contained Workload; the registry
// orders them by quadrant as the paper's figures do.

#include "core/workload.hpp"

#include <vector>

namespace cubie::core {

WorkloadPtr make_gemm();       // Quadrant I,  baseline: cudaSample matrixMul
WorkloadPtr make_pic();        // Quadrant I,  no baseline
WorkloadPtr make_fft();        // Quadrant I,  baseline: cuFFT proxy
WorkloadPtr make_stencil();    // Quadrant I,  baseline: DRStencil proxy
WorkloadPtr make_scan();       // Quadrant II, baseline: CUB BlockScan proxy
WorkloadPtr make_reduction();  // Quadrant III, baseline: CUB BlockReduce proxy
WorkloadPtr make_bfs();        // Quadrant IV, baseline: Gunrock proxy
WorkloadPtr make_gemv();       // Quadrant IV, baseline: cuBLAS GEMV proxy
WorkloadPtr make_spmv();       // Quadrant IV, baseline: cuSPARSE SpMV proxy
WorkloadPtr make_spgemm();     // Quadrant IV, baseline: cuSPARSE SpGEMM proxy

// All ten, in the paper's presentation order (Quadrant I -> IV).
std::vector<WorkloadPtr> make_suite();

// Canonical workload names, in suite order.
std::vector<std::string> workload_names();

// Factory lookup by name (case-insensitive: "spmv" == "SpMV"); constructs
// only the requested workload. Returns nullptr if unknown.
WorkloadPtr make_workload(const std::string& name);

}  // namespace cubie::core
