#pragma once
// Cubie-Check: the differential conformance harness behind the paper's
// Table 6 correctness claim — every TC / CC / CC-E variant computes the
// *same answer* as the baseline up to characterized FP64 error.
//
// For each engine cell group (workload, case, scale), the harness compares
// each non-baseline variant's RunOutput.values element-wise against the
// reference of that group:
//
//   * the Baseline variant of the same group when the workload has one
//     (run through the engine, so it is memoized like any other cell);
//   * the naive CPU serial ground truth (Workload::reference) otherwise
//     (PiC has no library baseline — Table 2: "-").
//
// Additionally, whenever both TC and CC are present in a group they are
// compared against each other *bit-exactly*: "CC replaces MMAs with scalar
// work preserving per-lane responsibilities (identical numerics)" is the
// paper's construction invariant, so any difference at all is a violation.
//
// Each comparison produces a Verdict — max abs/rel error, max ULP
// distance, a NaN/Inf census — judged against per-workload Tolerances
// derived from Table 6 (see tolerance_for). An element violates tolerance
// only if it exceeds *all three* gates (abs AND rel AND ulp); non-finite
// values must match in class and sign exactly. Entry points:
//
//   * `cubie check` (tools/cubie_cli.cpp) — CLI sweep, exit 1 on violation;
//   * verify_report(engine) — benches opt in via --check (bench_util.hpp);
//   * verify_plan(engine, plan) — execute a Plan, then verify its cells.
//
// See docs/ARCHITECTURE.md ("Cubie-Check") for the tolerance derivation.

#include "common/report.hpp"
#include "common/table.hpp"
#include "engine/engine.hpp"
#include "engine/plan.hpp"

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cubie::check {

// Per-workload conformance tolerances. An element (out vs ref) is a
// violation only when |out-ref| > max_abs AND |out-ref|/|ref| > max_rel
// AND ulp_distance(out, ref) > max_ulp — each gate is an independent
// excuse, so tiny absolute wobble on large values and tiny relative wobble
// near zero both pass. All-zero tolerances demand bit-exact equality.
struct Tolerance {
  double max_abs = 0.0;
  double max_rel = 0.0;
  double max_ulp = 0.0;
};

// Table 6-derived tolerance for a workload (differential bound: the sum of
// the baseline's and the variant's max error vs the CPU reference, with
// ~50-100x headroom). Non-floating-point workloads (BFS) get the exact
// tolerance: their values are traversal levels, identical by construction.
Tolerance tolerance_for(const core::Workload& w);
// The bit-exact tolerance used for the TC-vs-CC invariant.
inline Tolerance exact_tolerance() { return Tolerance{}; }

// Distance between two doubles in units of representable values (0 when
// a == b, including +0 vs -0; +inf when exactly one of them is NaN).
double ulp_distance(double a, double b);

// Count of non-finite values seen on each side of a comparison.
// `mismatched` counts element positions whose non-finiteness class or sign
// differs between the two sides (always a violation).
struct Census {
  std::size_t out_nan = 0, out_inf = 0;
  std::size_t ref_nan = 0, ref_inf = 0;
  std::size_t mismatched = 0;
};

// The per-cell verdict of one variant-vs-reference comparison.
struct Verdict {
  std::string workload;
  std::string variant;    // the variant under test
  std::string reference;  // "Baseline", "CPU-serial", or "TC" (invariant)
  std::string case_label;
  int scale = 1;
  std::size_t n = 0;             // elements compared
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  double max_ulp = 0.0;
  std::size_t violations = 0;    // elements beyond tolerance
  Census census;
  Tolerance tolerance;
  bool pass = true;
  std::string reason;  // set when !pass

  std::string key() const {
    return workload + "|" + variant + "|" + case_label + "|" + reference;
  }
};

// Element-wise differential comparison of `out` against `ref`, judged
// against `tol`. Fills the metric fields of a default Verdict; callers add
// identity (workload/variant/case). A size mismatch fails outright.
Verdict compare_values(const std::vector<double>& out,
                       const std::vector<double>& ref, const Tolerance& tol);

// A full conformance run: one Verdict per (variant, reference) pair of
// every checked cell group, in deterministic (workload, case, variant)
// order.
struct ConformanceReport {
  std::vector<Verdict> verdicts;
  std::size_t groups = 0;      // (workload, case, scale) groups checked
  std::size_t violations = 0;  // failing verdicts

  bool pass() const { return violations == 0; }

  // Human-readable verdict table (one row per Verdict).
  common::Table to_table() const;
  // One-line summary ("conformance: 42 verdicts over 12 groups, 0
  // violations") written to `os`.
  void print_summary(std::ostream& os) const;
  // The --json form: reuses the MetricsReport schema, one record per
  // Verdict. Conformance is device-independent, so the record's gpu slot
  // carries the comparison reference ("vs Baseline", "vs TC", ...) to keep
  // record keys unique. The verdict table is captured under "conformance".
  report::MetricsReport to_metrics_report(const std::string& tool,
                                          const std::string& title,
                                          int scale_divisor) const;
};

// Verify every cell the engine has materialized so far (grouped by
// workload/case/scale). This is what bench --check runs after the bench
// body: it judges exactly the cells the bench executed. Cells whose
// workload is not in the registry (caller-owned Workload instances) are
// skipped. Reference cells (Baseline) are run through the engine on demand
// if the bench did not execute them itself.
ConformanceReport verify_report(engine::ExperimentEngine& eng);

// Execute `plan` through the engine (honoring its --jobs/--cache options),
// then verify the plan's cells. `perturb` != 0 multiplies every finite
// element of each non-reference variant's values by (1 + perturb) before
// judging — a fault-injection aid that lets tests and the CLI prove the
// harness actually rejects out-of-tolerance outputs.
ConformanceReport verify_plan(engine::ExperimentEngine& eng,
                              const engine::Plan& plan, double perturb = 0.0);

// The shared core: verify caller-supplied cells (grouped as above).
ConformanceReport verify_cells(engine::ExperimentEngine& eng,
                               const std::vector<engine::Cell>& cells,
                               double perturb = 0.0);

}  // namespace cubie::check
