#pragma once
// Particle-in-cell substrate: particle storage (SoA), analytic EM fields,
// and the Boris push reference (the standard leapfrog rotation integrator
// the PiCTC workload maps onto tensor cores).
//
// Field model: uniform magnetic field B plus a spatially varying electric
// field E(x) evaluated analytically - the configuration PiCTC accelerates,
// where the velocity rotation matrix is shared across all particles of a
// time step and becomes the constant MMA operand.

#include <array>
#include <cstdint>
#include <vector>

namespace cubie::pic {

struct Particles {
  std::vector<double> x, y, z;     // positions
  std::vector<double> vx, vy, vz;  // velocities

  std::size_t size() const { return x.size(); }
  void resize(std::size_t n);
};

struct FieldConfig {
  // Uniform magnetic field.
  std::array<double, 3> b{0.0, 0.0, 1.0};
  // Electric field E(x) = e0 + e1 * sin(k . x) (componentwise same k).
  std::array<double, 3> e0{0.1, 0.0, 0.0};
  std::array<double, 3> e1{0.05, 0.02, 0.0};
  std::array<double, 3> k{0.7, 0.3, 0.1};
  double qm = 1.0;  // charge / mass ratio
  double dt = 0.01;

  std::array<double, 3> e_at(double px, double py, double pz) const;
};

// Deterministic initialization: positions in [0, L)^3, velocities in (-2, 2)
// via the LINPACK LCG (matching the paper's input scheme).
Particles make_particles(std::size_t n, double box, std::uint32_t seed);

// One Boris push step, CPU serial reference: half E kick, B rotation through
// the t/s vectors, half E kick, position drift.
void boris_push_serial(Particles& p, const FieldConfig& f);

// The combined rotation matrix R such that v_plus = R * v_minus for the
// uniform-B Boris rotation (I + s x)(I + t x) collapsed; shared by all
// particles in a step, which is what PiCTC exploits.
std::array<double, 9> boris_rotation_matrix(const FieldConfig& f);

// Kinetic energy sum (diagnostic used by tests: pure B rotation conserves it).
double kinetic_energy(const Particles& p);

}  // namespace cubie::pic
