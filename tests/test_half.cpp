// FP16 (binary16) emulation: conversion semantics, rounding, HMMA.

#include "common/rng.hpp"
#include "mma/half.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cubie {
namespace {

using mma::Half;

TEST(Half, ExactSmallIntegersRoundTrip) {
  for (int i = -2048; i <= 2048; ++i) {  // all integers up to 2^11 are exact
    EXPECT_EQ(mma::round_to_half(static_cast<double>(i)), static_cast<double>(i)) << i;
  }
}

TEST(Half, PowersOfTwoRoundTrip) {
  for (int e = -14; e <= 15; ++e) {
    const double v = std::ldexp(1.0, e);
    EXPECT_EQ(mma::round_to_half(v), v) << e;
    EXPECT_EQ(mma::round_to_half(-v), -v) << e;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(mma::to_half(1.0).bits, 0x3C00u);
  EXPECT_EQ(mma::to_half(-2.0).bits, 0xC000u);
  EXPECT_EQ(mma::to_half(0.5).bits, 0x3800u);
  EXPECT_EQ(mma::to_half(0.0).bits, 0x0000u);
  EXPECT_EQ(mma::to_half(65504.0).bits, 0x7BFFu);  // max finite half
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(mma::to_half(1e6).is_inf());
  EXPECT_TRUE(mma::to_half(-1e6).is_inf());
  EXPECT_EQ(mma::to_half(-1e6).bits, 0xFC00u);
  // 65520 is the rounding boundary: rounds to inf.
  EXPECT_TRUE(mma::to_half(65520.0).is_inf());
  EXPECT_FALSE(mma::to_half(65519.0).is_inf());
}

TEST(Half, SubnormalsRepresented) {
  const double min_subnormal = std::ldexp(1.0, -24);
  EXPECT_EQ(mma::round_to_half(min_subnormal), min_subnormal);
  EXPECT_EQ(mma::round_to_half(min_subnormal / 4.0), 0.0);  // underflow
  const double min_normal = std::ldexp(1.0, -14);
  EXPECT_EQ(mma::round_to_half(min_normal), min_normal);
}

TEST(Half, NanPropagates) {
  EXPECT_TRUE(mma::to_half(std::nan("")).is_nan());
  EXPECT_TRUE(std::isnan(mma::from_half(mma::to_half(std::nan("")))));
}

TEST(Half, RoundToNearestEven) {
  // 2049 is halfway between 2048 and 2050 (spacing 2 in [2048, 4096));
  // RNE picks the even mantissa: 2048.
  EXPECT_EQ(mma::round_to_half(2049.0), 2048.0);
  EXPECT_EQ(mma::round_to_half(2051.0), 2052.0);  // halfway -> even (2052)
  EXPECT_EQ(mma::round_to_half(2049.5), 2050.0);  // above halfway -> up
}

TEST(Half, RoundingIsMonotone) {
  common::Lcg rng(17);
  double prev_in = -3.0, prev_out = mma::round_to_half(prev_in);
  for (int i = 0; i < 10000; ++i) {
    const double v = prev_in + rng.next_unit() * 1e-3;
    const double r = mma::round_to_half(v);
    EXPECT_GE(r, prev_out);
    prev_in = v;
    prev_out = r;
  }
}

TEST(Half, RelativeErrorBounded) {
  common::Lcg rng(19);
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.next_linpack();
    if (std::fabs(v) < 1e-3) continue;
    const double r = mma::round_to_half(v);
    // binary16 has 11 significand bits: rel error <= 2^-11.
    EXPECT_LE(std::fabs(r - v) / std::fabs(v), std::ldexp(1.0, -11));
  }
}

TEST(Hmma, IdentityTimesMatrix) {
  double a[256] = {}, b[256], c[256] = {}, d[256];
  for (int i = 0; i < 16; ++i) a[i * 16 + i] = 1.0;
  common::Lcg rng(23);
  for (auto& v : b) v = mma::round_to_half(rng.next_linpack());
  mma::hmma_m16n16k16_f32acc(a, b, c, d, nullptr);
  for (int i = 0; i < 256; ++i) {
    // Identity times exactly-representable B: result equals B rounded
    // through FP32 (exact here since B is FP16-exact).
    EXPECT_DOUBLE_EQ(d[i], static_cast<double>(static_cast<float>(b[i])));
  }
}

TEST(Hmma, AccumulatorSeedsOutput) {
  double a[256] = {}, b[256] = {}, c[256], d[256];
  for (int i = 0; i < 256; ++i) c[i] = static_cast<double>(i);
  mma::hmma_m16n16k16_f32acc(a, b, c, d, nullptr);
  for (int i = 0; i < 256; ++i) EXPECT_DOUBLE_EQ(d[i], static_cast<double>(i));
}

TEST(Hmma, CountsTensorWork) {
  double a[256] = {}, b[256] = {}, c[256] = {};
  sim::KernelProfile prof;
  mma::hmma_m16n16k16_f32acc(a, b, c, c, &prof);
  EXPECT_DOUBLE_EQ(prof.tc_flops, 2.0 * 16 * 16 * 16);
}

TEST(GemmFp16, ErrorScalesWithFp16Epsilon) {
  const int n = 32;
  const auto a = common::random_vector(static_cast<std::size_t>(n) * n, 29);
  const auto b = common::random_vector(static_cast<std::size_t>(n) * n, 31);
  std::vector<double> c16(static_cast<std::size_t>(n) * n, 0.0);
  mma::gemm_fp16_tc(n, n, n, a.data(), b.data(), c16.data());
  // Against a double reference.
  double max_err = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double ref = 0.0;
      for (int k = 0; k < n; ++k)
        ref += a[static_cast<std::size_t>(i) * n + k] * b[static_cast<std::size_t>(k) * n + j];
      max_err = std::max(max_err, std::fabs(c16[static_cast<std::size_t>(i) * n + j] - ref));
    }
  }
  // FP16 storage error ~ n * |a||b| * 2^-11: bounded well above FP64 but
  // far below garbage.
  EXPECT_GT(max_err, 1e-6);
  EXPECT_LT(max_err, 1.0);
}

TEST(GemmFp16, RaggedDimensionsMatchZeroPaddedFullTiles) {
  // 17x17x17: every edge is one past a tile boundary, the worst case for the
  // zero-padded ragged-tile path (runs under ASan in CI, so any
  // out-of-bounds staging read/write aborts the test).
  const int n = 17, full = 32;
  const auto a = common::random_vector(static_cast<std::size_t>(n) * n, 37);
  const auto b = common::random_vector(static_cast<std::size_t>(n) * n, 41);
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  mma::gemm_fp16_tc(n, n, n, a.data(), b.data(), c.data());
  // Reference: the same operands zero-padded to full 32x32x32 tiles. Padding
  // contributes only fmaf(0, 0, acc) no-ops, so the top-left 17x17 block
  // must match the ragged run bit for bit.
  std::vector<double> a_pad(static_cast<std::size_t>(full) * full, 0.0);
  std::vector<double> b_pad(static_cast<std::size_t>(full) * full, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a_pad[static_cast<std::size_t>(i) * full + j] = a[static_cast<std::size_t>(i) * n + j];
      b_pad[static_cast<std::size_t>(i) * full + j] = b[static_cast<std::size_t>(i) * n + j];
    }
  std::vector<double> c_pad(static_cast<std::size_t>(full) * full, 0.0);
  mma::gemm_fp16_tc(full, full, full, a_pad.data(), b_pad.data(), c_pad.data());
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(c[static_cast<std::size_t>(i) * n + j],
                c_pad[static_cast<std::size_t>(i) * full + j])
          << "(" << i << ", " << j << ")";
    }
  // Rows/columns of the padded product beyond n are pure zero-operand work.
  for (int i = 0; i < full; ++i)
    for (int j = 0; j < full; ++j) {
      if (i < n && j < n) continue;
      EXPECT_EQ(c_pad[static_cast<std::size_t>(i) * full + j], 0.0);
    }
}

TEST(GemmFp16, CountsProfileOnRaggedShapes) {
  const auto a = common::random_vector(17 * 19, 43);
  const auto b = common::random_vector(19 * 18, 47);
  std::vector<double> c(17 * 18, 0.0);
  sim::KernelProfile prof;
  mma::gemm_fp16_tc(17, 18, 19, a.data(), b.data(), c.data(), &prof);
  // ceil(17/16) * ceil(18/16) * ceil(19/16) = 2*2*2 HMMA tiles.
  EXPECT_DOUBLE_EQ(prof.tc_flops, 8.0 * 2.0 * 16 * 16 * 16);
}

}  // namespace
}  // namespace cubie
