# Empty dependencies file for fig09_roofline.
# This may be replaced when dependencies are built.
