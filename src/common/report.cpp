#include "common/report.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>

namespace cubie::report {

// ---------------------------------------------------------------------------
// Json construction / access.

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::Number;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::String;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

std::size_t Json::size() const { return items_.size(); }

void Json::push_back(Json v) {
  type_ = Type::Array;
  items_.emplace_back(std::string(), std::move(v));
}

Json& Json::operator[](const std::string& key) {
  type_ = Type::Object;
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(key, Json());
  return items_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Serialization.

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// Locale-independent: snprintf("%g")/strtod honor LC_NUMERIC and would
// emit/expect ',' decimal separators under e.g. de_DE, corrupting every
// --json report and the engine's disk cache. std::to_chars always writes
// the C-locale form (tests/test_report.cpp pins this under setlocale).
std::string format_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  // Integers (the common case for counters) print without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    const auto r =
        std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, 0);
    return std::string(buf, r.ptr);
  }
  // Shortest representation that round-trips exactly.
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: out += format_number(number_); break;
    case Type::String:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::Array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        items_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Type::Object: {
      if (items_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        out += '"';
        out += json_escape(items_[i].first);
        out += "\":";
        if (pretty) out += ' ';
        items_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing: a small recursive-descent parser over the full document.

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json::string(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      out = Json::boolean(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      out = Json::boolean(false);
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      out = Json();
      return true;
    }
    return parse_number(out);
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
        digits = true;
      }
    };
    eat_digits();
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      eat_digits();
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
      eat_digits();
    }
    if (!digits) {
      pos = start;
      return fail("invalid number");
    }
    // std::from_chars is locale-independent (strtod would reject '.' under a
    // non-C LC_NUMERIC). It does not accept a leading '+', so skip one.
    std::size_t first = start;
    if (text[first] == '+') ++first;
    double value = 0.0;
    const auto r =
        std::from_chars(text.data() + first, text.data() + pos, value);
    if (r.ec != std::errc()) {
      pos = start;
      return fail("invalid number");
    }
    out = Json::number(value);
    return true;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        if (pos + 1 >= text.size()) return fail("dangling escape");
        const char e = text[pos + 1];
        pos += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by our writer; decode them permissively as-is).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_array(Json& out) {
    if (!consume('[')) return false;
    out = Json::array();
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Json v;
      if (!parse_value(v)) return false;
      out.push_back(std::move(v));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_object(Json& out) {
    if (!consume('{')) return false;
    out = Json::object();
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      Json v;
      if (!parse_value(v)) return false;
      out[key] = std::move(v);
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  Parser p{text, 0, {}};
  Json root;
  if (!p.parse_value(root)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return root;
}

// ---------------------------------------------------------------------------
// MetricsReport.

void MetricRecord::set(const std::string& name, double value) {
  for (auto& [k, v] : metrics) {
    if (k == name) {
      v = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

const double* MetricRecord::get(const std::string& name) const {
  for (const auto& [k, v] : metrics) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::string MetricRecord::key() const {
  return workload + "|" + variant + "|" + gpu + "|" + case_label;
}

bool lower_is_better(const std::string& metric_name) {
  // Throughput metrics first: "req_per_s" would otherwise be caught by the
  // "_s" (seconds) suffix below, flipping its regression direction. Any
  // "<work>_per_<time>" rate is higher-is-better by construction.
  static const char* kHigherPrefixes[] = {"req_per", "throughput",
                                          "completed"};
  for (const char* p : kHigherPrefixes) {
    if (metric_name.rfind(p, 0) == 0) return false;
  }
  if (metric_name.find("_per_") != std::string::npos) return false;
  static const char* kPrefixes[] = {"time", "t_", "wall", "host_wall",
                                    "energy", "edp", "power", "avg_power",
                                    "peak_power", "err", "avg_err", "max_err",
                                    "pad", "floor", "dram_bytes", "naive",
                                    "fused", "pairwise", "lanes",
                                    // Cubie-Serve load-generator metrics:
                                    // latency quantiles and failure counts
                                    // regress upward.
                                    "p50", "p95", "p99", "latency",
                                    "rejected"};
  for (const char* p : kPrefixes) {
    if (metric_name.rfind(p, 0) == 0) return true;
  }
  // Suffix forms like fp64_avg_err, fp16_tc_ms, window_energy_j.
  static const char* kSuffixes[] = {"_err", "_ms", "_us", "_s", "_j", "_w"};
  for (const char* s : kSuffixes) {
    const std::size_t len = std::string(s).size();
    if (metric_name.size() >= len &&
        metric_name.compare(metric_name.size() - len, len, s) == 0)
      return true;
  }
  return false;
}

MetricRecord& MetricsReport::add_record(std::string workload,
                                        std::string variant, std::string gpu,
                                        std::string case_label) {
  // Find-or-create: repeated calls with the same key merge their metrics
  // into one record, keeping (workload, variant, gpu, case) keys unique so
  // bench_diff can match records across reports unambiguously.
  for (auto& r : records) {
    if (r.workload == workload && r.variant == variant && r.gpu == gpu &&
        r.case_label == case_label) {
      return r;
    }
  }
  records.push_back(MetricRecord{std::move(workload), std::move(variant),
                                 std::move(gpu), std::move(case_label),
                                 {}});
  return records.back();
}

Json to_json(const sim::KernelProfile& p) {
  Json j = Json::object();
  j["tc_flops"] = Json::number(p.tc_flops);
  j["cc_flops"] = Json::number(p.cc_flops);
  j["tc_bitops"] = Json::number(p.tc_bitops);
  j["cc_intops"] = Json::number(p.cc_intops);
  j["dram_bytes"] = Json::number(p.dram_bytes);
  j["smem_bytes"] = Json::number(p.smem_bytes);
  j["warp_instructions"] = Json::number(p.warp_instructions);
  j["threads"] = Json::number(p.threads);
  j["launches"] = Json::number(p.launches);
  j["mem_eff"] = Json::number(p.mem_eff);
  j["pipe_eff"] = Json::number(p.pipe_eff);
  j["useful_flops"] = Json::number(p.useful_flops);
  j["access"] = Json::string(sim::access_pattern_name(p.access));
  j["working_set_bytes"] = Json::number(p.working_set_bytes);
  return j;
}

Json to_json(const sim::Prediction& p) {
  Json j = Json::object();
  j["time_s"] = Json::number(p.time_s);
  j["avg_power_w"] = Json::number(p.avg_power_w);
  j["energy_j"] = Json::number(p.energy_j);
  j["edp"] = Json::number(p.edp);
  j["bound"] = Json::string(sim::bottleneck_name(p.bound));
  j["u_tensor"] = Json::number(p.u_tensor);
  j["u_cuda"] = Json::number(p.u_cuda);
  j["u_mem"] = Json::number(p.u_mem);
  return j;
}

Json to_json(const common::ErrorStats& e) {
  Json j = Json::object();
  j["avg"] = Json::number(e.avg);
  j["max"] = Json::number(e.max);
  j["n"] = Json::number(static_cast<double>(e.n));
  return j;
}

Json to_json(const sim::TraceNode& n) {
  Json j = Json::object();
  j["name"] = Json::string(n.name);
  j["wall_s"] = Json::number(n.wall_s);
  // Optional: absent when the platform reported no RSS (0 means "unknown",
  // not "zero kilobytes"); readers default it to 0.
  if (n.peak_rss_kb > 0)
    j["peak_rss_kb"] = Json::number(static_cast<double>(n.peak_rss_kb));
  j["profile"] = to_json(n.inclusive);
  Json kids = Json::array();
  for (const auto& c : n.children) kids.push_back(to_json(c));
  j["children"] = std::move(kids);
  return j;
}

Json MetricsReport::to_json() const {
  Json j = Json::object();
  j["schema_version"] = Json::number(kSchemaVersion);
  j["tool"] = Json::string(tool);
  j["title"] = Json::string(title);
  j["scale_divisor"] = Json::number(scale_divisor);
  Json recs = Json::array();
  for (const auto& r : records) {
    Json rec = Json::object();
    rec["workload"] = Json::string(r.workload);
    rec["variant"] = Json::string(r.variant);
    rec["gpu"] = Json::string(r.gpu);
    rec["case"] = Json::string(r.case_label);
    Json m = Json::object();
    for (const auto& [k, v] : r.metrics) m[k] = Json::number(v);
    rec["metrics"] = std::move(m);
    recs.push_back(std::move(rec));
  }
  j["records"] = std::move(recs);
  Json tabs = Json::array();
  for (const auto& t : tables) {
    Json tab = Json::object();
    tab["name"] = Json::string(t.name);
    Json cols = Json::array();
    for (const auto& c : t.columns) cols.push_back(Json::string(c));
    tab["columns"] = std::move(cols);
    Json rows = Json::array();
    for (const auto& row : t.rows) {
      Json jr = Json::array();
      for (const auto& cell : row) jr.push_back(Json::string(cell));
      rows.push_back(std::move(jr));
    }
    tab["rows"] = std::move(rows);
    tabs.push_back(std::move(tab));
  }
  j["tables"] = std::move(tabs);
  Json trs = Json::array();
  for (const auto& t : traces) trs.push_back(report::to_json(t));
  j["traces"] = std::move(trs);
  if (engine) j["engine"] = report::to_json(*engine);
  if (hw) j["hw"] = report::to_json(*hw);
  return j;
}

Json to_json(const EngineStats& s) {
  Json j = Json::object();
  j["cells"] = Json::number(s.cells);
  j["memo_hits"] = Json::number(s.memo_hits);
  j["disk_hits"] = Json::number(s.disk_hits);
  j["coalesced_hits"] = Json::number(s.coalesced_hits);
  j["misses"] = Json::number(s.misses);
  j["traced_reruns"] = Json::number(s.traced_reruns);
  j["disk_errors"] = Json::number(s.disk_errors);
  j["exec_wall_s"] = Json::number(s.exec_wall_s);
  j["max_cell_wall_s"] = Json::number(s.max_cell_wall_s);
  return j;
}

Json to_json(const HwStats& s) {
  Json j = Json::object();
  j["available"] = Json::boolean(s.available);
  if (!s.available) {
    // Typed fallback: reason only, no meaningless zero counters.
    j["reason"] = Json::string(s.unavailable_reason);
    return j;
  }
  j["cells"] = Json::number(s.cells);
  j["cycles"] = Json::number(s.cycles);
  j["instructions"] = Json::number(s.instructions);
  j["cache_references"] = Json::number(s.cache_references);
  j["cache_misses"] = Json::number(s.cache_misses);
  j["task_clock_s"] = Json::number(s.task_clock_s);
  return j;
}

namespace {

std::string get_string(const Json& j, const std::string& key) {
  const Json* v = j.find(key);
  return v && v->is_string() ? v->as_string() : std::string();
}

double get_number(const Json& j, const char* key, double fallback) {
  const Json* v = j.find(key);
  return v && v->is_number() ? v->as_number() : fallback;
}

}  // namespace

sim::KernelProfile profile_from_json(const Json& j) {
  sim::KernelProfile p;
  p.tc_flops = get_number(j, "tc_flops", 0.0);
  p.cc_flops = get_number(j, "cc_flops", 0.0);
  p.tc_bitops = get_number(j, "tc_bitops", 0.0);
  p.cc_intops = get_number(j, "cc_intops", 0.0);
  p.dram_bytes = get_number(j, "dram_bytes", 0.0);
  p.smem_bytes = get_number(j, "smem_bytes", 0.0);
  p.warp_instructions = get_number(j, "warp_instructions", 0.0);
  p.threads = get_number(j, "threads", 0.0);
  p.launches = static_cast<int>(get_number(j, "launches", 0.0));
  p.mem_eff = get_number(j, "mem_eff", 1.0);
  p.pipe_eff = get_number(j, "pipe_eff", 1.0);
  p.useful_flops = get_number(j, "useful_flops", 0.0);
  // Absent in pre-v2 cell files: default to the dense/streaming descriptor.
  p.access = sim::access_pattern_from_name(get_string(j, "access"));
  p.working_set_bytes = get_number(j, "working_set_bytes", 0.0);
  return p;
}

namespace {

sim::TraceNode trace_from_json(const Json& j) {
  sim::TraceNode n;
  n.name = get_string(j, "name");
  n.wall_s = get_number(j, "wall_s", 0.0);
  n.peak_rss_kb = static_cast<long>(get_number(j, "peak_rss_kb", 0.0));
  if (const Json* p = j.find("profile"); p && p->is_object()) {
    n.inclusive = profile_from_json(*p);
  }
  if (const Json* kids = j.find("children"); kids && kids->is_array()) {
    for (std::size_t i = 0; i < kids->size(); ++i) {
      if (kids->at(i).is_object()) n.children.push_back(trace_from_json(kids->at(i)));
    }
  }
  return n;
}

}  // namespace

std::optional<MetricsReport> MetricsReport::from_json(const Json& j,
                                                      std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<MetricsReport> {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("report root is not an object");
  const Json* sv = j.find("schema_version");
  if (!sv || !sv->is_number()) return fail("missing schema_version");
  if (static_cast<int>(sv->as_number()) > kSchemaVersion) {
    return fail("report schema_version " +
                std::to_string(static_cast<int>(sv->as_number())) +
                " is newer than supported " + std::to_string(kSchemaVersion));
  }
  MetricsReport rep;
  rep.tool = get_string(j, "tool");
  rep.title = get_string(j, "title");
  if (const Json* s = j.find("scale_divisor"); s && s->is_number()) {
    rep.scale_divisor = static_cast<int>(s->as_number());
  }
  if (const Json* recs = j.find("records")) {
    if (!recs->is_array()) return fail("records is not an array");
    for (std::size_t i = 0; i < recs->size(); ++i) {
      const Json& r = recs->at(i);
      if (!r.is_object()) return fail("record is not an object");
      MetricRecord rec;
      rec.workload = get_string(r, "workload");
      rec.variant = get_string(r, "variant");
      rec.gpu = get_string(r, "gpu");
      rec.case_label = get_string(r, "case");
      if (const Json* m = r.find("metrics"); m && m->is_object()) {
        for (const auto& [k, v] : m->members()) {
          if (v.is_number()) {
            rec.metrics.emplace_back(k, v.as_number());
          } else if (v.is_null()) {
            // Non-finite metrics serialize as null (JSON has no NaN/Inf).
            // Map null back to NaN instead of dropping the key, so a report
            // survives a serialize/parse round trip with its metric set
            // intact — the cluster router re-serializes parsed shard
            // reports, and a dropped key would break the zero-delta
            // contract against a single-engine run.
            rec.metrics.emplace_back(
                k, std::numeric_limits<double>::quiet_NaN());
          }
        }
      }
      rep.records.push_back(std::move(rec));
    }
  }
  if (const Json* tabs = j.find("tables"); tabs && tabs->is_array()) {
    for (std::size_t i = 0; i < tabs->size(); ++i) {
      const Json& t = tabs->at(i);
      CapturedTable tab;
      tab.name = get_string(t, "name");
      if (const Json* cols = t.find("columns"); cols && cols->is_array()) {
        for (std::size_t c = 0; c < cols->size(); ++c) {
          tab.columns.push_back(cols->at(c).as_string());
        }
      }
      if (const Json* rows = t.find("rows"); rows && rows->is_array()) {
        for (std::size_t r = 0; r < rows->size(); ++r) {
          std::vector<std::string> row;
          const Json& jr = rows->at(r);
          for (std::size_t c = 0; jr.is_array() && c < jr.size(); ++c) {
            row.push_back(jr.at(c).as_string());
          }
          tab.rows.push_back(std::move(row));
        }
      }
      rep.tables.push_back(std::move(tab));
    }
  }
  if (const Json* trs = j.find("traces"); trs && trs->is_array()) {
    for (std::size_t i = 0; i < trs->size(); ++i) {
      if (trs->at(i).is_object()) rep.traces.push_back(trace_from_json(trs->at(i)));
    }
  }
  if (const Json* eng = j.find("engine"); eng && eng->is_object()) {
    EngineStats s;
    s.cells = get_number(*eng, "cells", 0.0);
    s.memo_hits = get_number(*eng, "memo_hits", 0.0);
    s.disk_hits = get_number(*eng, "disk_hits", 0.0);
    s.coalesced_hits = get_number(*eng, "coalesced_hits", 0.0);
    s.misses = get_number(*eng, "misses", 0.0);
    s.traced_reruns = get_number(*eng, "traced_reruns", 0.0);
    s.disk_errors = get_number(*eng, "disk_errors", 0.0);
    s.exec_wall_s = get_number(*eng, "exec_wall_s", 0.0);
    s.max_cell_wall_s = get_number(*eng, "max_cell_wall_s", 0.0);
    rep.engine = s;
  }
  if (const Json* hw = j.find("hw"); hw && hw->is_object()) {
    HwStats s;
    if (const Json* a = hw->find("available"); a && a->is_bool()) {
      s.available = a->as_bool();
    }
    if (s.available) {
      s.cells = get_number(*hw, "cells", 0.0);
      s.cycles = get_number(*hw, "cycles", 0.0);
      s.instructions = get_number(*hw, "instructions", 0.0);
      s.cache_references = get_number(*hw, "cache_references", 0.0);
      s.cache_misses = get_number(*hw, "cache_misses", 0.0);
      s.task_clock_s = get_number(*hw, "task_clock_s", 0.0);
    } else {
      s.unavailable_reason = get_string(*hw, "reason");
    }
    rep.hw = s;
  }
  return rep;
}

bool MetricsReport::write_file(const std::string& path) const {
  const std::string text = to_json().dump(2) + "\n";
  if (path == "-") {
    std::cout << text;
    return static_cast<bool>(std::cout);
  }
  std::ofstream os(path);
  if (!os) return false;
  os << text;
  return static_cast<bool>(os);
}

std::optional<MetricsReport> MetricsReport::read_file(const std::string& path,
                                                      std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  auto j = Json::parse(text, error);
  if (!j) return std::nullopt;
  return from_json(*j, error);
}

}  // namespace cubie::report
