# Empty dependencies file for ablation_accumulation.
# This may be replaced when dependencies are built.
