// Ablation: what does FP64 MMU hardware actually buy? Prices every TC
// profile on a Volta-class control device (V100: no FP64 tensor-core mode,
// so MMA work runs at the CUDA-core rate) and on the three evaluated GPUs,
// normalizing per unit of peak bandwidth so the architectural effect is
// isolated from the generational bandwidth growth. This is the quantitative
// backing for the paper's closing plea to preserve FP64 MMU capability.

#include "bench_util.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace cubie;
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_no_fp64_mmu",
      "Ablation: TC kernels with vs without FP64 MMU hardware");
  const int s = bench.scale;
  std::cout << "=== Ablation: TC kernels with vs without FP64 MMU hardware "
               "===\nTC-variant speedup over the same GPU's baseline; V100 "
               "has no FP64 MMU\n(its \"TC\" runs at CUDA-core rate), so its "
               "column shows what remains\nof the MMU advantage: only the "
               "data-layout benefits.\n\n";

  // Only the workloads with a distinct baseline participate.
  engine::Plan plan = engine::Plan::representative(s).with_variants(
      {core::Variant::TC, core::Variant::Baseline});
  for (const auto& w : bench.suite()) {
    if (w->has_baseline()) plan.workloads.push_back(w->name());
  }
  bench.warm(plan);

  const auto v100 = bench.model_for(sim::v100());
  common::Table t({"Workload", "V100 (no FP64 MMU)", "A100", "H200", "B200"});
  for (const auto& w : bench.suite()) {
    if (!w->has_baseline()) continue;
    const auto tc_case = w->cases(s)[w->representative_case()];
    const auto& tc = bench.run(*w, core::Variant::TC, tc_case);
    const auto& base = bench.run(*w, core::Variant::Baseline, tc_case);
    std::vector<std::string> row{w->name()};
    auto cell = [&](const sim::DeviceModel& model, const std::string& gpu) {
      const double speedup = model.predict(base.profile).time_s /
                             model.predict(tc.profile).time_s;
      bench.record(w->name(), "TC/Baseline", gpu, tc_case.label)
          .set("speedup", speedup);
      return common::fmt_double(speedup, 2) + "x";
    };
    row.push_back(cell(*v100, "V100"));
    for (auto g : sim::all_gpus()) {
      const auto& spec = sim::spec_for(g);
      row.push_back(cell(*bench.model_for(spec), spec.name));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  bench.capture("no_fp64_mmu", t);
  std::cout <<
      "\nReading: on V100 the layout/algorithm benefits survive (sparse\n"
      "kernels keep most of their win - Observation 8's memory effects),\n"
      "but the compute-bound Quadrant I gains collapse without the 2x FP64\n"
      "MMU peak. B200's 1:1 FP64 TC:CC ratio sits partway back toward the\n"
      "V100 regime - the regression the paper's conclusion warns about.\n";
  return bench.finish();
}
