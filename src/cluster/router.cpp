#include "cluster/router.hpp"

#include "cluster/merge.hpp"
#include "common/report.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

namespace cubie::cluster {
namespace {

using serve::Cmd;
using serve::ErrorCode;
using serve::Request;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// One front-end client connection (same shape as the serve daemon's: the
// fd is owned here, writes are serialized so concurrent shard completions
// never interleave response bytes).
struct Conn {
  explicit Conn(int fd) : fd(fd) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  bool send_line(const std::string& line) {
    std::lock_guard<std::mutex> lk(write_mu);
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  int fd;
  std::mutex write_mu;
};

// The typed wire code of a parsed worker response ("" when ok=true).
std::string response_error_code(const report::Json& resp) {
  const report::Json* ok = resp.find("ok");
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) return "";
  if (const report::Json* e = resp.find("error")) {
    if (const report::Json* c = e->find("code"); c != nullptr && c->is_string())
      return c->as_string();
  }
  return "internal";
}

std::string response_error_message(const report::Json& resp) {
  if (const report::Json* e = resp.find("error")) {
    if (const report::Json* m = e->find("message");
        m != nullptr && m->is_string())
      return m->as_string();
  }
  return "worker error";
}

ErrorCode error_code_from_name(const std::string& name) {
  if (name == "bad_request") return ErrorCode::BadRequest;
  if (name == "overloaded") return ErrorCode::Overloaded;
  if (name == "deadline_exceeded") return ErrorCode::DeadlineExceeded;
  if (name == "shutting_down") return ErrorCode::ShuttingDown;
  return ErrorCode::Internal;
}

// Parse a worker response's "engine" block back into the typed counters
// (the inverse of report::to_json(EngineStats); absent fields stay 0).
report::EngineStats engine_stats_from_json(const report::Json* j) {
  report::EngineStats s;
  if (j == nullptr || !j->is_object()) return s;
  auto num = [&](const char* key) {
    const report::Json* v = j->find(key);
    return v != nullptr && v->is_number() ? v->as_number() : 0.0;
  };
  s.cells = num("cells");
  s.memo_hits = num("memo_hits");
  s.disk_hits = num("disk_hits");
  s.coalesced_hits = num("coalesced_hits");
  s.misses = num("misses");
  s.traced_reruns = num("traced_reruns");
  s.disk_errors = num("disk_errors");
  s.exec_wall_s = num("exec_wall_s");
  s.max_cell_wall_s = num("max_cell_wall_s");
  return s;
}

std::string endpoint_label(const serve::Endpoint& ep) {
  return !ep.socket_path.empty()
             ? "unix:" + ep.socket_path
             : "tcp:127.0.0.1:" + std::to_string(ep.tcp_port);
}

// Shard/request lifecycle events ride the same bus schema as the serve
// daemon's so `cubie explain` and the flight ring work unchanged.
void emit_event(telemetry::EventKind kind, const std::string& name,
                const std::string& request_id,
                const telemetry::TraceContext& trace, std::size_t count = 0,
                double wall_s = -1.0, const char* source = nullptr,
                int ok = -1) {
  auto& bus = telemetry::bus();
  if (!bus.enabled()) return;
  telemetry::Event e;
  e.kind = kind;
  e.name = name;
  e.detail = request_id;
  e.request_id = request_id;
  e.trace_id = trace.trace_id;
  e.span_id = trace.span_id;
  e.count = count;
  e.wall_s = wall_s;
  if (source != nullptr) e.source = source;
  e.ok = ok;
  bus.emit(std::move(e));
}

}  // namespace

struct Router::Impl {
  explicit Impl(RouterOptions o)
      : opts(std::move(o)),
        eng(opts.engine),
        registry(std::make_shared<telemetry::MetricsRegistry>()) {}

  // Per-worker live state. Mutable fields are guarded by Impl::mu (probe
  // thread, reader threads, and fan-out threads all touch them).
  struct Worker {
    WorkerSpec spec;
    bool healthy = true;
    std::size_t consecutive_failures = 0;
    std::size_t inflight = 0;
    std::size_t shards = 0;
  };

  RouterOptions opts;
  engine::ExperimentEngine eng;  // enumeration + cost pricing only
  std::shared_ptr<telemetry::MetricsRegistry> registry;
  telemetry::SinkSet pulse_sinks;
  std::shared_ptr<telemetry::FlightRecorderSink> flight;
  Clock::time_point start_time{};

  int listen_fd = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  int bound_port = -1;
  std::string endpoint_str;
  bool started = false;

  std::atomic<bool> shutdown_flag{false};

  mutable std::mutex mu;  // guards workers, router_stats, conns, readers
  std::condition_variable probe_cv;  // wakes the prober early on shutdown
  std::vector<Worker> workers;
  RouterStats router_stats;
  std::vector<std::weak_ptr<Conn>> conns;
  std::vector<std::thread> readers;
  std::thread prober;

  // --- metrics ---------------------------------------------------------
  telemetry::Counter& cluster_counter(const char* name, const char* help,
                                      const std::string& worker = "") {
    if (worker.empty()) return registry->counter(name, help);
    return registry->counter(name, help, {{"worker", worker}});
  }

  void refresh_worker_gauges() {
    std::lock_guard<std::mutex> lk(mu);
    std::size_t healthy = 0;
    for (const auto& w : workers) {
      if (w.healthy) ++healthy;
      registry
          ->gauge("cubie_cluster_inflight",
                  "Router->worker calls currently outstanding.",
                  {{"worker", w.spec.name}})
          .set(static_cast<double>(w.inflight));
    }
    registry
        ->gauge("cubie_cluster_workers", "Workers configured in the router.")
        .set(static_cast<double>(workers.size()));
    registry
        ->gauge("cubie_cluster_workers_healthy",
                "Workers currently passing health probes.")
        .set(static_cast<double>(healthy));
  }

  void count_retry() {
    {
      std::lock_guard<std::mutex> lk(mu);
      ++router_stats.retries;
    }
    cluster_counter("cubie_cluster_retries_total",
                    "Same-worker retries after an overloaded answer.")
        .inc();
  }

  void count_failover() {
    {
      std::lock_guard<std::mutex> lk(mu);
      ++router_stats.failovers;
    }
    cluster_counter("cubie_cluster_failovers_total",
                    "Requests moved to another worker after a failure.")
        .inc();
  }

  // --- worker selection / health --------------------------------------
  void mark_unhealthy(std::size_t wi) {
    std::lock_guard<std::mutex> lk(mu);
    workers[wi].consecutive_failures = std::max(
        workers[wi].consecutive_failures,
        static_cast<std::size_t>(opts.unhealthy_after));
    workers[wi].healthy = false;
  }

  std::vector<std::size_t> healthy_workers() const {
    std::lock_guard<std::mutex> lk(mu);
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < workers.size(); ++i)
      if (workers[i].healthy) out.push_back(i);
    return out;
  }

  std::size_t least_loaded(const std::vector<std::size_t>& candidates) const {
    std::lock_guard<std::mutex> lk(mu);
    std::size_t best = candidates.front();
    for (std::size_t i : candidates)
      if (workers[i].inflight < workers[best].inflight) best = i;
    return best;
  }

  void add_inflight(std::size_t wi, long delta) {
    std::lock_guard<std::mutex> lk(mu);
    workers[wi].inflight =
        static_cast<std::size_t>(static_cast<long>(workers[wi].inflight) +
                                 delta);
  }

  // One router->worker exchange over a fresh connection: sends `line`,
  // returns the raw response line (nullopt on connect/transport failure).
  std::optional<std::string> exchange(std::size_t wi, const std::string& line) {
    serve::Endpoint ep;
    {
      std::lock_guard<std::mutex> lk(mu);
      ep = workers[wi].spec.endpoint;
    }
    std::string err;
    auto client = serve::Client::connect(ep, &err);
    if (!client) return std::nullopt;
    add_inflight(wi, 1);
    std::optional<std::string> raw;
    if (client->send_line(line)) raw = client->recv_line();
    add_inflight(wi, -1);
    return raw;
  }

  // Forward one request with retry + failover. Candidates are tried in
  // order; an "overloaded" answer retries the same worker under the
  // RetryPolicy's jittered backoff, a transport failure or "shutting_down"
  // answer demotes the worker and moves on (a failover). Returns the raw
  // response line to relay, or nullopt with *code/*message set.
  std::optional<std::string> forward(const Request& req,
                                     const std::vector<std::size_t>& candidates,
                                     ErrorCode* code, std::string* message) {
    const std::string line = serve::request_to_json(req).dump(-1);
    const auto t0 = Clock::now();
    bool failed_over = false;
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      const std::size_t wi = candidates[ci];
      if (failed_over) count_failover();
      serve::RetrySchedule sched(opts.retry);
      for (;;) {
        auto raw = exchange(wi, line);
        if (!raw) {
          // The worker is gone mid-conversation: demote it immediately so
          // concurrent shards stop picking it, and move on.
          mark_unhealthy(wi);
          failed_over = true;
          break;
        }
        auto resp = report::Json::parse(*raw, nullptr);
        if (!resp) {
          mark_unhealthy(wi);
          failed_over = true;
          break;
        }
        const std::string ec = response_error_code(*resp);
        if (ec.empty()) return raw;  // success
        if (ec == serve::error_code_name(ErrorCode::ShuttingDown)) {
          mark_unhealthy(wi);
          failed_over = true;
          break;
        }
        if (serve::retryable_error_code(ec)) {
          if (const auto delay =
                  sched.next_delay_ms(seconds_since(t0) * 1e3)) {
            count_retry();
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(*delay));
            continue;
          }
          // Retry budget spent on this worker; try the next one.
          failed_over = true;
          break;
        }
        // A typed, non-retryable answer (bad_request, deadline_exceeded,
        // internal): failing over would just re-fail — propagate it.
        if (code) *code = error_code_from_name(ec);
        if (message) *message = response_error_message(*resp);
        return std::nullopt;
      }
    }
    if (code) *code = ErrorCode::Overloaded;
    if (message)
      *message = candidates.empty()
                     ? "no healthy cluster worker"
                     : "every cluster worker failed or is overloaded";
    return std::nullopt;
  }

  // --- suite fan-out ---------------------------------------------------
  void handle_suite(const std::shared_ptr<Conn>& conn, const Request& r,
                    const telemetry::TraceContext& trace) {
    {
      std::lock_guard<std::mutex> lk(mu);
      ++router_stats.suites;
    }
    cluster_counter("cubie_cluster_suites_total",
                    "Suite requests fanned out across the cluster.")
        .inc();

    auto healthy = healthy_workers();
    if (healthy.empty()) {
      std::lock_guard<std::mutex> lk(mu);
      ++router_stats.rejected_unavailable;
      conn->send_line(serve::error_line(r.id, ErrorCode::Overloaded,
                                        "no healthy cluster worker", r.trace));
      return;
    }

    const auto cells = enumerate_suite_cells(eng, r.spec.scale);
    std::vector<std::string> names;
    names.reserve(healthy.size());
    {
      std::lock_guard<std::mutex> lk(mu);
      for (std::size_t i : healthy) names.push_back(workers[i].spec.name);
    }
    const ShardAssignment assignment = assign_cells(cells, names);
    {
      std::lock_guard<std::mutex> lk(mu);
      router_stats.last_imbalance_ratio = assignment.imbalance_ratio;
    }
    registry
        ->gauge("cubie_cluster_imbalance_ratio",
                "Modeled max/mean worker load of the last suite assignment.")
        .set(assignment.imbalance_ratio);

    // One thread per non-empty shard; each forwards with failover and
    // parses the worker's report + engine block.
    struct ShardResult {
      std::optional<report::MetricsReport> report;
      report::EngineStats engine;
      ErrorCode code = ErrorCode::Internal;
      std::string message;
    };
    std::vector<std::size_t> shard_ix;
    for (std::size_t s = 0; s < assignment.shards.size(); ++s)
      if (!assignment.shards[s].empty()) shard_ix.push_back(s);
    std::vector<ShardResult> results(shard_ix.size());
    std::vector<std::thread> threads;
    threads.reserve(shard_ix.size());
    for (std::size_t t = 0; t < shard_ix.size(); ++t) {
      threads.emplace_back([&, t] {
        const std::size_t s = shard_ix[t];
        Request shard;
        shard.id = r.id + "#s" + std::to_string(t);
        shard.cmd = Cmd::Suite;
        shard.spec = r.spec;
        shard.cells = assignment.shards[s];
        shard.deadline_ms = r.deadline_ms;
        // Every shard rides the suite request's trace id, so the worker's
        // engine events correlate back to the one front-end request.
        shard.trace = trace.trace_id;
        const std::string shard_key =
            serve::request_key(shard) + " -> " + names[s];
        {
          std::lock_guard<std::mutex> lk(mu);
          ++router_stats.shards;
          for (auto& w : workers)
            if (w.spec.name == names[s]) ++w.shards;
        }
        cluster_counter("cubie_cluster_shards_total",
                        "Suite shards dispatched, by assigned worker.",
                        names[s])
            .inc();
        emit_event(telemetry::EventKind::RequestStarted, shard_key, shard.id,
                   trace);
        const auto t0 = Clock::now();
        // Preference order: the assigned worker first, then the remaining
        // healthy ones — a dead worker's shard re-lands deterministically.
        std::vector<std::size_t> candidates{healthy[s]};
        for (std::size_t i : healthy)
          if (i != healthy[s]) candidates.push_back(i);
        ShardResult& res = results[t];
        const auto raw = forward(shard, candidates, &res.code, &res.message);
        if (raw) {
          if (const auto resp = report::Json::parse(*raw, nullptr)) {
            std::string perr;
            if (const report::Json* rep = resp->find("report")) {
              res.report = report::MetricsReport::from_json(*rep, &perr);
              res.engine = engine_stats_from_json(resp->find("engine"));
            }
            if (!res.report) {
              res.code = ErrorCode::Internal;
              res.message = "unparseable shard report: " + perr;
            }
          }
        }
        emit_event(telemetry::EventKind::RequestFinished, shard_key, shard.id,
                   trace, assignment.shards[s].size(), seconds_since(t0),
                   "shard", res.report ? 1 : 0);
      });
    }
    for (auto& th : threads) th.join();

    for (const auto& res : results) {
      if (!res.report) {
        conn->send_line(
            serve::error_line(r.id, res.code, res.message, r.trace));
        return;
      }
    }

    std::vector<report::MetricsReport> shard_reports;
    shard_reports.reserve(results.size());
    report::EngineStats engine_total;
    for (auto& res : results) {
      shard_reports.push_back(std::move(*res.report));
      engine_total = merge_engine_stats(engine_total, res.engine);
    }
    std::string merr;
    const auto merged = merge_shard_reports(
        shard_reports, canonical_suite_record_keys(eng, r.spec.scale), &merr);
    if (!merged) {
      conn->send_line(
          serve::error_line(r.id, ErrorCode::Internal, merr, r.trace));
      return;
    }
    conn->send_line(serve::report_line(r.id, *merged, engine_total,
                                       std::nullopt, r.trace));
  }

  // --- passthrough (run / check / sleep / pre-sharded suite) -----------
  void handle_passthrough(const std::shared_ptr<Conn>& conn, const Request& r) {
    auto healthy = healthy_workers();
    if (healthy.empty()) {
      {
        std::lock_guard<std::mutex> lk(mu);
        ++router_stats.rejected_unavailable;
      }
      conn->send_line(serve::error_line(r.id, ErrorCode::Overloaded,
                                        "no healthy cluster worker", r.trace));
      return;
    }
    // Least-loaded first so a burst of passthrough requests spreads across
    // the fleet; the rest stay as failover candidates in index order.
    const std::size_t first = least_loaded(healthy);
    std::vector<std::size_t> candidates{first};
    for (std::size_t i : healthy)
      if (i != first) candidates.push_back(i);
    ErrorCode code = ErrorCode::Internal;
    std::string message;
    const auto raw = forward(r, candidates, &code, &message);
    if (!raw) {
      conn->send_line(serve::error_line(r.id, code, message, r.trace));
      return;
    }
    // Relay the worker's response bytes untouched: passthrough responses
    // stay byte-identical to a direct single-worker conversation.
    conn->send_line(*raw);
  }

  // --- control commands, answered locally ------------------------------
  void handle_control(const std::shared_ptr<Conn>& conn, const Request& r) {
    using report::Json;
    switch (r.cmd) {
      case Cmd::Ping: {
        Json body = Json::object();
        body["pong"] = Json::boolean(true);
        body["role"] = Json::string("cluster-router");
        conn->send_line(serve::ok_line(r.id, std::move(body), r.trace));
        return;
      }
      case Cmd::Stats: {
        Json body = Json::object();
        // The "server" block mirrors the serve daemon's so `cubie top` and
        // `cubie request stats` render a router without special-casing.
        serve::ServerStats srv;
        Json cluster = Json::object();
        Json warr = Json::array();
        {
          std::lock_guard<std::mutex> lk(mu);
          srv.connections = router_stats.connections;
          srv.accepted = router_stats.started;
          srv.started = router_stats.started;
          srv.completed = router_stats.completed;
          srv.rejected_overloaded = router_stats.rejected_unavailable;
          srv.bad_requests = router_stats.bad_requests;
          srv.uptime_s = seconds_since(start_time);
          cluster["suites"] =
              Json::number(static_cast<double>(router_stats.suites));
          cluster["shards"] =
              Json::number(static_cast<double>(router_stats.shards));
          cluster["retries"] =
              Json::number(static_cast<double>(router_stats.retries));
          cluster["failovers"] =
              Json::number(static_cast<double>(router_stats.failovers));
          cluster["imbalance_ratio"] =
              Json::number(router_stats.last_imbalance_ratio);
          std::size_t healthy = 0;
          for (const auto& w : workers) {
            Json wj = Json::object();
            wj["name"] = Json::string(w.spec.name);
            wj["endpoint"] = Json::string(endpoint_label(w.spec.endpoint));
            wj["healthy"] = Json::boolean(w.healthy);
            wj["inflight"] = Json::number(static_cast<double>(w.inflight));
            wj["shards"] = Json::number(static_cast<double>(w.shards));
            wj["consecutive_failures"] =
                Json::number(static_cast<double>(w.consecutive_failures));
            warr.push_back(std::move(wj));
            if (w.healthy) ++healthy;
          }
          cluster["workers"] =
              Json::number(static_cast<double>(workers.size()));
          cluster["workers_healthy"] =
              Json::number(static_cast<double>(healthy));
        }
        body["engine"] = report::to_json(eng.stats());
        body["server"] = serve::to_json(srv);
        body["cluster"] = std::move(cluster);
        body["workers"] = std::move(warr);
        conn->send_line(serve::ok_line(r.id, std::move(body), r.trace));
        return;
      }
      case Cmd::Metrics: {
        refresh_worker_gauges();
        Json body = Json::object();
        body["content_type"] = Json::string("text/plain; version=0.0.4");
        body["metrics"] = Json::string(telemetry::prometheus_text(*registry));
        conn->send_line(serve::ok_line(r.id, std::move(body), r.trace));
        return;
      }
      case Cmd::Flight: {
        Json body = Json::object();
        Json events = Json::array();
        std::size_t n = 0;
        if (flight) {
          for (const telemetry::Event& e : flight->snapshot()) {
            events.push_back(telemetry::event_to_json(e));
            ++n;
          }
        }
        body["count"] = Json::number(static_cast<double>(n));
        body["capacity"] = Json::number(
            static_cast<double>(flight ? opts.flight_capacity : 0));
        body["events"] = std::move(events);
        conn->send_line(serve::ok_line(r.id, std::move(body), r.trace));
        return;
      }
      case Cmd::Shutdown: {
        Json body = Json::object();
        body["draining"] = Json::boolean(true);
        conn->send_line(serve::ok_line(r.id, std::move(body), r.trace));
        request_shutdown_impl();
        return;
      }
      default:
        conn->send_line(serve::error_line(
            r.id, ErrorCode::Internal, "not a control command", r.trace));
        return;
    }
  }

  // --- front-end plumbing ----------------------------------------------
  void handle_line(const std::shared_ptr<Conn>& conn,
                   const std::string& line) {
    std::string err;
    auto req = serve::parse_request(line, &err);
    if (!req) {
      std::lock_guard<std::mutex> lk(mu);
      ++router_stats.bad_requests;
      conn->send_line(serve::error_line("", ErrorCode::BadRequest, err));
      return;
    }
    Request r = std::move(*req);
    telemetry::TraceContext trace;
    if (telemetry::valid_trace_id(r.trace)) {
      trace.trace_id = r.trace;
    } else {
      r.trace.clear();
      trace.trace_id = telemetry::generate_trace_id();
    }
    trace.span_id = telemetry::generate_span_id();
    {
      std::lock_guard<std::mutex> lk(mu);
      ++router_stats.started;
    }
    telemetry::TraceScope scope(trace);
    const std::string key = serve::request_key(r);
    emit_event(telemetry::EventKind::RequestStarted, key, r.id, trace);
    const auto t0 = Clock::now();
    switch (r.cmd) {
      case Cmd::Ping:
      case Cmd::Stats:
      case Cmd::Metrics:
      case Cmd::Flight:
      case Cmd::Shutdown:
        handle_control(conn, r);
        break;
      case Cmd::Suite:
        // A pre-sharded suite addressed at the router is somebody else's
        // shard (e.g. a router behind a router): pass it through whole.
        if (r.cells.empty()) {
          handle_suite(conn, r, trace);
        } else {
          handle_passthrough(conn, r);
        }
        break;
      default:
        handle_passthrough(conn, r);
        break;
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      ++router_stats.completed;
    }
    emit_event(telemetry::EventKind::RequestFinished, key, r.id, trace, 0,
               seconds_since(t0), "router", 1);
  }

  void reader_loop(std::shared_ptr<Conn> conn) {
    std::string buf;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = buf.find('\n')) != std::string::npos) {
        std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!line.empty()) handle_line(conn, line);
      }
      if (buf.size() > serve::kMaxRequestBytes) {
        std::lock_guard<std::mutex> lk(mu);
        ++router_stats.bad_requests;
        conn->send_line(serve::error_line("", ErrorCode::BadRequest,
                                          "request line exceeds 1 MiB"));
        return;
      }
    }
  }

  // --- health probing ---------------------------------------------------
  void probe_once() {
    std::vector<std::pair<std::size_t, serve::Endpoint>> targets;
    {
      std::lock_guard<std::mutex> lk(mu);
      for (std::size_t i = 0; i < workers.size(); ++i)
        targets.emplace_back(i, workers[i].spec.endpoint);
    }
    for (const auto& [wi, ep] : targets) {
      Request probe;
      probe.id = "router-probe";
      probe.cmd = Cmd::Stats;
      std::string err;
      bool ok = false;
      if (auto client = serve::Client::connect(ep, &err)) {
        if (const auto resp = client->call(probe, &err))
          ok = response_error_code(*resp).empty();
      }
      std::lock_guard<std::mutex> lk(mu);
      if (ok) {
        // One good probe readmits the worker — a restarted worker rejoins
        // the rotation without operator action.
        workers[wi].consecutive_failures = 0;
        workers[wi].healthy = true;
      } else {
        ++workers[wi].consecutive_failures;
        if (workers[wi].consecutive_failures >=
            static_cast<std::size_t>(opts.unhealthy_after))
          workers[wi].healthy = false;
      }
    }
    refresh_worker_gauges();
  }

  void prober_loop() {
    std::unique_lock<std::mutex> lk(mu);
    while (!shutdown_flag.load(std::memory_order_acquire)) {
      probe_cv.wait_for(lk, std::chrono::duration<double, std::milli>(
                                opts.probe_interval_ms));
      if (shutdown_flag.load(std::memory_order_acquire)) return;
      lk.unlock();
      probe_once();
      lk.lock();
    }
  }

  void request_shutdown_impl() {
    shutdown_flag.store(true, std::memory_order_release);
    probe_cv.notify_all();
    if (wake_wr >= 0) {
      const char b = 'x';
      [[maybe_unused]] ssize_t n = ::write(wake_wr, &b, 1);
    }
  }
};

Router::Router(RouterOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

Router::~Router() {
  impl_->request_shutdown_impl();
  if (impl_->prober.joinable()) impl_->prober.join();
  for (auto& t : impl_->readers)
    if (t.joinable()) t.join();
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  if (impl_->wake_rd >= 0) ::close(impl_->wake_rd);
  if (impl_->wake_wr >= 0) ::close(impl_->wake_wr);
  if (!impl_->opts.socket_path.empty())
    ::unlink(impl_->opts.socket_path.c_str());
}

bool Router::start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg + ": " + std::strerror(errno);
    return false;
  };
  Impl& im = *impl_;
  if (im.opts.workers.empty()) {
    if (error) *error = "cluster router needs at least one worker";
    return false;
  }
  if (im.opts.unhealthy_after < 1) im.opts.unhealthy_after = 1;
  if (im.opts.probe_interval_ms < 10.0) im.opts.probe_interval_ms = 10.0;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (const auto& spec : im.opts.workers)
      im.workers.push_back(Impl::Worker{spec});
  }

  int pipefd[2];
  if (::pipe(pipefd) != 0) return fail("pipe");
  im.wake_rd = pipefd[0];
  im.wake_wr = pipefd[1];
  ::fcntl(im.wake_wr, F_SETFL, O_NONBLOCK);

  if (!im.opts.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (im.opts.socket_path.size() >= sizeof(addr.sun_path)) {
      if (error) *error = "socket path too long: " + im.opts.socket_path;
      return false;
    }
    std::strncpy(addr.sun_path, im.opts.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    im.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (im.listen_fd < 0) return fail("socket");
    ::unlink(im.opts.socket_path.c_str());
    if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return fail("bind " + im.opts.socket_path);
    im.endpoint_str = "unix:" + im.opts.socket_path;
  } else {
    if (im.opts.tcp_port < 0) {
      if (error) *error = "no endpoint: set socket_path or tcp_port";
      return false;
    }
    im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (im.listen_fd < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(im.opts.tcp_port));
    if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return fail("bind 127.0.0.1:" + std::to_string(im.opts.tcp_port));
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    im.bound_port = ntohs(bound.sin_port);
    im.endpoint_str = "tcp:127.0.0.1:" + std::to_string(im.bound_port);
  }
  if (::listen(im.listen_fd, 64) != 0) return fail("listen");

  im.pulse_sinks.add(std::make_shared<telemetry::MetricsSink>(im.registry));
  if (im.opts.flight_capacity > 0) {
    im.flight = std::make_shared<telemetry::FlightRecorderSink>(
        im.opts.flight_capacity);
    im.pulse_sinks.add(im.flight);
  }
  im.start_time = Clock::now();
  im.refresh_worker_gauges();
  im.prober = std::thread([&im] { im.prober_loop(); });
  im.started = true;
  return true;
}

void Router::serve() {
  Impl& im = *impl_;
  for (;;) {
    pollfd fds[2] = {{im.listen_fd, POLLIN, 0}, {im.wake_rd, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        if (im.shutdown_flag.load(std::memory_order_acquire)) break;
        continue;
      }
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        im.shutdown_flag.load(std::memory_order_acquire))
      break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept(im.listen_fd, nullptr, nullptr);
    if (cfd < 0) continue;
    auto conn = std::make_shared<Conn>(cfd);
    std::lock_guard<std::mutex> lk(im.mu);
    ++im.router_stats.connections;
    im.conns.erase(
        std::remove_if(
            im.conns.begin(), im.conns.end(),
            [](const std::weak_ptr<Conn>& w) { return w.expired(); }),
        im.conns.end());
    im.conns.push_back(conn);
    im.readers.emplace_back(
        [&im, conn = std::move(conn)]() mutable { im.reader_loop(conn); });
  }

  // Drain: stop accepting, unblock idle readers, and join them — a reader
  // mid-fan-out finishes its request first, which *is* the drain (every
  // admitted request gets its response before serve() returns). SHUT_RD
  // only: idle readers see EOF, busy ones can still write their response.
  im.request_shutdown_impl();
  ::close(im.listen_fd);
  im.listen_fd = -1;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (auto& w : im.conns)
      if (auto c = w.lock()) ::shutdown(c->fd, SHUT_RD);
    readers.swap(im.readers);
  }
  for (auto& t : readers)
    if (t.joinable()) t.join();
  if (im.prober.joinable()) im.prober.join();
  if (im.opts.forward_shutdown) {
    // --spawn mode: the workers live and die with the router. Best-effort:
    // a worker that already died is simply skipped.
    std::vector<serve::Endpoint> eps;
    {
      std::lock_guard<std::mutex> lk(im.mu);
      for (const auto& w : im.workers) eps.push_back(w.spec.endpoint);
    }
    for (const auto& ep : eps) {
      std::string err;
      if (auto client = serve::Client::connect(ep, &err)) {
        Request r;
        r.id = "router-drain";
        r.cmd = Cmd::Shutdown;
        client->call(r, &err);
      }
    }
  }
  if (!im.opts.socket_path.empty()) ::unlink(im.opts.socket_path.c_str());
  im.started = false;
}

void Router::request_shutdown() { impl_->request_shutdown_impl(); }

int Router::tcp_port() const { return impl_->bound_port; }

const std::string& Router::endpoint() const { return impl_->endpoint_str; }

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  RouterStats s = impl_->router_stats;
  if (impl_->started) s.uptime_s = seconds_since(impl_->start_time);
  return s;
}

std::vector<WorkerStatus> Router::workers() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<WorkerStatus> out;
  for (const auto& w : impl_->workers) {
    WorkerStatus st;
    st.name = w.spec.name;
    st.endpoint = endpoint_label(w.spec.endpoint);
    st.healthy = w.healthy;
    st.inflight = w.inflight;
    st.shards = w.shards;
    st.consecutive_failures = w.consecutive_failures;
    out.push_back(std::move(st));
  }
  return out;
}

telemetry::MetricsRegistry& Router::metrics_registry() {
  return *impl_->registry;
}

}  // namespace cubie::cluster
