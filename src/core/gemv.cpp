// GEMV workload (Quadrant IV): y = A * x for tall-skinny A (Table 2 cases).
//
// TC: partition A into 8x4 blocks; the B operand broadcasts the matching x
// segment into all 8 columns; the m8n8k4 MMA then produces an 8x8 tile whose
// diagonal carries the 8 row results (the rest is redundant work - the
// Quadrant IV signature). CC preserves the identical data layout and FMA
// order. CC-E computes only the essential per-row dot products with 4-way
// partial sums (vectorized essential work, hence a different rounding).
// Baseline: cuBLAS-style warp-per-row with a 32-way partial-sum tree.

#include "core/kernels.hpp"

#include "common/rng.hpp"
#include "mma/mma.hpp"
#include "sim/calibration.hpp"
#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace cubie::core {
namespace {

namespace scal = cubie::sim::cal;

struct GemvProblem {
  int m = 0, n = 0;
  std::vector<double> a, x;
};

GemvProblem make_problem(const TestCase& tc) {
  GemvProblem p;
  p.m = static_cast<int>(tc.dims[0]);
  p.n = static_cast<int>(tc.dims[1]);
  p.a = common::random_vector(static_cast<std::size_t>(p.m) * static_cast<std::size_t>(p.n), 21);
  p.x = common::random_vector(static_cast<std::size_t>(p.n), 23);
  return p;
}

std::vector<double> run_mma_gemv(const GemvProblem& p, mma::Context& ctx) {
  const int m = p.m, n = p.n;
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);

  ctx.launch((m / 8.0) * 32.0);
  ctx.load_global(static_cast<double>(m) * n * 8.0);          // A, streamed
  ctx.load_global((m / 8.0) * n * 8.0);                        // x per block row
  ctx.store_global(static_cast<double>(m) * 8.0);              // y

  double a_frag[32], b_frag[32];
  for (int i0 = 0; i0 + 8 <= m; i0 += 8) {
    double acc[64] = {};
    for (int k0 = 0; k0 < n; k0 += 4) {
      const int kw = std::min(4, n - k0);
      for (int i = 0; i < 8; ++i)
        for (int kk = 0; kk < 4; ++kk)
          a_frag[i * 4 + kk] =
              kk < kw ? p.a[static_cast<std::size_t>(i0 + i) * n + k0 + kk] : 0.0;
      // Broadcast the x segment into all 8 columns of B.
      for (int kk = 0; kk < 4; ++kk) {
        const double xv = kk < kw ? p.x[static_cast<std::size_t>(k0 + kk)] : 0.0;
        for (int j = 0; j < 8; ++j) b_frag[kk * 8 + j] = xv;
      }
      ctx.dmma_m8n8k4_acc(a_frag, b_frag, acc);
    }
    // Extract the diagonal: the only useful elements of the 8x8 output.
    for (int i = 0; i < 8; ++i) y[static_cast<std::size_t>(i0 + i)] = acc[i * 8 + i];
  }
  return y;
}

std::vector<double> run_cce_gemv(const GemvProblem& p, mma::Context& ctx) {
  const int m = p.m, n = p.n;
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);

  ctx.launch((m / 8.0) * 32.0);
  ctx.load_global(static_cast<double>(m) * n * 8.0 + (m / 8.0) * n * 8.0);
  ctx.store_global(static_cast<double>(m) * 8.0);
  ctx.cc_fma(static_cast<double>(m) * n);   // essential FLOPs only
  ctx.cc_flop(static_cast<double>(m) * 3);  // partial-sum combine

  // Four lanes cooperate per row: strided partial sums, then a sequential
  // combine - the essential computation, in a different rounding order.
  for (int i = 0; i < m; ++i) {
    double part[4] = {};
    for (int j = 0; j < n; ++j) {
      part[j % 4] = std::fma(p.a[static_cast<std::size_t>(i) * n + j],
                             p.x[static_cast<std::size_t>(j)], part[j % 4]);
    }
    y[static_cast<std::size_t>(i)] = ((part[0] + part[1]) + part[2]) + part[3];
  }
  return y;
}

std::vector<double> run_baseline_gemv(const GemvProblem& p, mma::Context& ctx) {
  const int m = p.m, n = p.n;
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);

  ctx.launch(static_cast<double>(m) * 32.0);  // warp per row
  ctx.load_global(static_cast<double>(m) * n * 8.0 + static_cast<double>(m) * n * 8.0 / 32.0);
  ctx.store_global(static_cast<double>(m) * 8.0);
  ctx.cc_fma(static_cast<double>(m) * n);
  ctx.cc_flop(static_cast<double>(m) * 31);  // warp tree reduction

  // cuBLAS-style: 32 lanes stride the row, then a pairwise shuffle tree.
  for (int i = 0; i < m; ++i) {
    double part[32] = {};
    for (int j = 0; j < n; ++j) {
      part[j % 32] = std::fma(p.a[static_cast<std::size_t>(i) * n + j],
                              p.x[static_cast<std::size_t>(j)], part[j % 32]);
    }
    for (int stride = 16; stride >= 1; stride /= 2)
      for (int l = 0; l < stride; ++l) part[l] += part[l + stride];
    y[static_cast<std::size_t>(i)] = part[0];
  }
  return y;
}

class GemvWorkload final : public Workload {
 public:
  std::string name() const override { return "GEMV"; }
  Quadrant quadrant() const override { return Quadrant::IV; }
  std::string dwarf() const override { return "Dense linear algebra"; }
  std::string baseline_name() const override { return "cuBLAS GEMV v12.8"; }

  std::vector<TestCase> cases(int s) const override {
    // Table 2: 4Kx16, 4Kx32, 11Kx16, 32Kx16, 40Kx16. Only M scales; the
    // skinny N is the workload's defining property.
    const std::pair<long, long> shapes[] = {
        {4096, 16}, {4096, 32}, {11264, 16}, {32768, 16}, {40960, 16}};
    std::vector<TestCase> cs;
    for (auto [m0, n0] : shapes) {
      const long m = std::max(64L, (m0 / s) / 8 * 8);
      cs.push_back({std::to_string(m) + "x" + std::to_string(n0), {m, n0}, ""});
    }
    return cs;
  }

  RunOutput run(Variant v, const TestCase& tc,
                const RunOptions& opts) const override {
    RunOutput out;
    sim::Span total(opts.tracer, "GEMV/" + variant_name(v), out.profile);
    sim::Span setup(opts.tracer, "setup", out.profile);
    GemvProblem p = make_problem(tc);
    setup.finish();
    mma::Context ctx(v == Variant::TC ? mma::Pipe::TensorCore
                                      : mma::Pipe::CudaCore,
                     out.profile);
    sim::Span kernel(opts.tracer, "kernel", out.profile);
    switch (v) {
      case Variant::TC:
      case Variant::CC:
        out.values = run_mma_gemv(p, ctx);
        out.profile.pipe_eff = v == Variant::TC ? scal::kTcSmallBlockEff
                                                : scal::kCcEmulationEff;
        out.profile.mem_eff = v == Variant::TC ? scal::kMemEffTcLayout
                                               : scal::kMemEffCcEmulation;
        break;
      case Variant::CCE:
        out.values = run_cce_gemv(p, ctx);
        out.profile.pipe_eff = scal::kCcEssentialEff;
        out.profile.mem_eff = scal::kMemEffCceGemv;
        break;
      case Variant::Baseline:
        out.values = run_baseline_gemv(p, ctx);
        out.profile.pipe_eff = scal::kCcLibraryEff;
        out.profile.mem_eff = scal::kMemEffLibrary;
        break;
    }
    out.profile.useful_flops = 2.0 * p.m * static_cast<double>(p.n);
    // Cachesim descriptor: one dense streaming pass over the tall matrix
    // plus the two vectors.
    out.profile.access = sim::AccessPattern::Dense;
    out.profile.working_set_bytes =
        8.0 * (static_cast<double>(p.m) * p.n + p.m + p.n);
    return out;
  }

  std::vector<double> reference(const TestCase& tc) const override {
    GemvProblem p = make_problem(tc);
    std::vector<double> y(static_cast<std::size_t>(p.m), 0.0);
    sparse::gemv_serial(p.m, p.n, p.a, p.x, y);
    return y;
  }
};

}  // namespace

WorkloadPtr make_gemv() { return std::make_unique<GemvWorkload>(); }

}  // namespace cubie::core
