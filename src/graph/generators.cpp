#include "graph/generators.hpp"

#include "common/rng.hpp"
#include "sparse/io.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cubie::graph {

using common::Lcg;

Graph gen_rmat(int scale, int edge_factor, double a, double b, double c,
               std::uint32_t seed) {
  Lcg rng(seed);
  const int n = 1 << scale;
  const std::size_t m = static_cast<std::size_t>(n) * static_cast<std::size_t>(edge_factor);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    int u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.next_unit();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges.emplace_back(u, v);
  }
  return graph_from_edges(n, edges, /*symmetrize=*/true);
}

Graph gen_mycielskian(int k) {
  if (k < 2) throw std::invalid_argument("mycielskian: k must be >= 2");
  // M_2 = K_2.
  std::vector<std::pair<int, int>> edges = {{0, 1}};
  int n = 2;
  for (int step = 2; step < k; ++step) {
    // Mycielski construction: given G = (V, E) with |V| = n, add shadow
    // vertices u_i (indices n + i) and apex w (index 2n). Each u_i connects
    // to N(v_i) and to w.
    std::vector<std::pair<int, int>> next = edges;  // original edges kept
    for (auto [x, y] : edges) {
      next.emplace_back(n + x, y);  // shadow of x to neighbour y
      next.emplace_back(n + y, x);  // shadow of y to neighbour x
    }
    for (int i = 0; i < n; ++i) next.emplace_back(n + i, 2 * n);
    edges = std::move(next);
    n = 2 * n + 1;
  }
  return graph_from_edges(n, edges, /*symmetrize=*/true);
}

Graph gen_web(int n, int host_size, double avg_degree, std::uint32_t seed) {
  Lcg rng(seed);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(n * avg_degree / 2));
  const int hosts = std::max(1, n / host_size);
  for (int u = 0; u < n; ++u) {
    // Power-law out-degree, mostly intra-host.
    const double z = rng.next_unit();
    int deg = static_cast<int>(avg_degree * 0.5 / std::sqrt(z + 0.01));
    deg = std::clamp(deg, 1, 4 * static_cast<int>(avg_degree));
    const int host = u / host_size;
    for (int d = 0; d < deg; ++d) {
      int v;
      if (rng.next_unit() < 0.8) {  // intra-host link
        v = host * host_size + static_cast<int>(rng.next_below(static_cast<std::uint32_t>(host_size)));
      } else {  // cross-host link, biased to popular hosts
        const int h = static_cast<int>(std::pow(rng.next_unit(), 2.0) * hosts);
        v = std::min(h, hosts - 1) * host_size +
            static_cast<int>(rng.next_below(static_cast<std::uint32_t>(host_size)));
      }
      if (v < n) edges.emplace_back(u, v);
    }
  }
  return graph_from_edges(n, edges, /*symmetrize=*/true);
}

Graph gen_social(int n, double avg_degree, std::uint32_t seed) {
  Lcg rng(seed);
  // Skewed endpoints (preferential flavour) plus triangle-closure edges.
  std::vector<std::pair<int, int>> edges;
  const std::size_t m = static_cast<std::size_t>(n * avg_degree / 2.0);
  edges.reserve(m + m / 4);
  auto skewed = [&]() {
    return static_cast<int>(std::pow(rng.next_unit(), 2.5) * n) % n;
  };
  for (std::size_t e = 0; e < m; ++e) {
    edges.emplace_back(skewed(), static_cast<int>(rng.next_below(static_cast<std::uint32_t>(n))));
  }
  // Closure: connect endpoints of consecutive edges (cheap triangle proxy).
  for (std::size_t e = 1; e < m; e += 4) {
    edges.emplace_back(edges[e - 1].second, edges[e].second);
  }
  return graph_from_edges(n, edges, /*symmetrize=*/true);
}

std::vector<std::string> table3_names() {
  return {"wikipedia-20070206", "mycielskian17", "wb-edu", "kron_g500-logn21",
          "com-Orkut"};
}

NamedGraph make_table3_graph(const std::string& name, int scale_divisor) {
  if (name.find('/') != std::string::npos ||
      (name.size() > 4 && name.substr(name.size() - 4) == ".mtx")) {
    // A real Matrix Market file: treat entries as edges, symmetrized.
    const auto coo = sparse::read_matrix_market_file(name);
    std::vector<std::pair<int, int>> edges;
    edges.reserve(coo.nnz());
    for (std::size_t i = 0; i < coo.nnz(); ++i)
      edges.emplace_back(coo.row[i], coo.col[i]);
    NamedGraph ng;
    ng.name = name;
    ng.group = "file";
    ng.graph = graph_from_edges(std::max(coo.rows, coo.cols), edges, true);
    return ng;
  }
  const int s = std::max(1, scale_divisor);
  // log2(s) steps of scale reduction for the exponential generators.
  int log2s = 0;
  while ((1 << (log2s + 1)) <= s) ++log2s;
  NamedGraph ng;
  ng.name = name;
  if (name == "wikipedia-20070206") {
    // 3.57M vertices / 90M edges (~25 per vertex), hyperlink graph.
    ng.group = "Gleich";
    ng.graph = gen_web(3566907 / (s * 16), 64, 25.0, 201);
  } else if (name == "mycielskian17") {
    // Exact construction; k reduced with scale (k=17 -> 98,303 vertices).
    ng.group = "Mycielski";
    ng.graph = gen_mycielskian(std::max(8, 17 - log2s - 4));
  } else if (name == "wb-edu") {
    // 9.85M vertices / 112M edges (~11 per vertex), .edu web crawl.
    ng.group = "SNAP";
    ng.graph = gen_web(9845725 / (s * 32), 128, 11.0, 202);
  } else if (name == "kron_g500-logn21") {
    // 2^21 vertices / 182M edges: Graph500 Kronecker, scale reduced.
    ng.group = "DIMACS10";
    ng.graph = gen_rmat(21 - log2s - 7, 16, 0.57, 0.19, 0.19, 203);
  } else if (name == "com-Orkut") {
    // 3.07M vertices / 234M edges (~76 per vertex), social network.
    ng.group = "SNAP";
    ng.graph = gen_social(3072441 / (s * 16), 76.0 / 4.0, 204);
  } else {
    throw std::invalid_argument("unknown Table 3 graph: " + name);
  }
  return ng;
}

std::vector<NamedGraph> synthetic_graph_corpus(int count, std::uint32_t seed) {
  std::vector<NamedGraph> corpus;
  corpus.reserve(static_cast<std::size_t>(count));
  Lcg rng(seed);
  for (int i = 0; i < count; ++i) {
    NamedGraph ng;
    ng.name = "graph_" + std::to_string(i);
    const std::uint32_t s = seed + static_cast<std::uint32_t>(i) * 104729u;
    const int family = i % 4;
    switch (family) {
      case 0:
        ng.group = "kron";
        ng.graph = gen_rmat(8 + static_cast<int>(rng.next_below(4)),
                            4 + static_cast<int>(rng.next_below(16)), 0.57,
                            0.19, 0.19, s);
        break;
      case 1:
        ng.group = "web";
        ng.graph = gen_web(512 + static_cast<int>(rng.next_below(3584)),
                           16 + static_cast<int>(rng.next_below(112)),
                           4.0 + 20.0 * rng.next_unit(), s);
        break;
      case 2:
        ng.group = "social";
        ng.graph = gen_social(512 + static_cast<int>(rng.next_below(3584)),
                              4.0 + 30.0 * rng.next_unit(), s);
        break;
      default:
        ng.group = "mycielski";
        ng.graph = gen_mycielskian(4 + (i / 4) % 7);
        break;
    }
    corpus.push_back(std::move(ng));
  }
  return corpus;
}

}  // namespace cubie::graph
