# Empty dependencies file for ablation_occupancy.
# This may be replaced when dependencies are built.
