#pragma once
// Device specifications for the three GPUs the paper evaluates (Table 5,
// Figure 12). Each spec parameterizes the analytic performance and power
// models; only published numbers (whitepapers / the paper itself) are used.

#include <string>
#include <vector>

namespace cubie::sim {

enum class Gpu { A100, H200, B200 };

struct DeviceSpec {
  std::string name;         // "A100 (Ampere)" etc.
  Gpu id = Gpu::A100;

  // Compute peaks, FLOP/s (paper Table 5 and Figure 12).
  double fp64_tc_peak = 0.0;  // FP64 tensor core
  double fp64_cc_peak = 0.0;  // FP64 CUDA core
  double fp16_tc_peak = 0.0;  // FP16 tensor core (Figure 12)
  double fp16_cc_peak = 0.0;  // FP16 CUDA core (Figure 12)
  double bit_tc_peak = 0.0;   // single-bit tensor-core ops/s (BMMA, for BFS)
  double int_cc_peak = 0.0;   // CUDA-core integer op/s

  // Memory system.
  double dram_bw = 0.0;       // bytes/s (Table 5)
  double smem_bw = 0.0;       // aggregate shared/L1 bytes/s
  double dram_capacity = 0.0; // bytes
  // Unified L2 capacity (whitepapers); parameterizes the cachesim backend's
  // default cache geometry. The analytic backend never reads it.
  double l2_bytes = 0.0;
  double dram_latency_s = 450e-9;  // loaded-DRAM round trip (cachesim)

  // Machine shape.
  int num_sm = 0;
  int warp_scheds_per_sm = 4;
  double clock_hz = 0.0;
  double max_threads = 0.0;      // num_sm * 2048
  double launch_overhead_s = 0.0;  // steady-state (stream-amortized) launch cost

  // Power model coefficients (Section 7; H200 TDP is 750 W in the paper).
  double tdp_w = 0.0;
  double idle_w = 0.0;
  double tc_power_w = 0.0;   // marginal power at full tensor-pipe utilization
  double cc_power_w = 0.0;   // marginal power at full CUDA-pipe utilization
  double mem_power_w = 0.0;  // marginal power at full DRAM utilization

  // Warp-instruction issue throughput (warps/s across the device).
  double issue_rate() const {
    return static_cast<double>(num_sm) * warp_scheds_per_sm * clock_hz;
  }
};

// The three evaluated devices.
const DeviceSpec& a100();
const DeviceSpec& h200();
const DeviceSpec& b200();
// Control device for the no-FP64-MMU ablation: a Volta-class GPU whose
// tensor cores have no FP64 mode (FP64 MMA work falls back to CUDA cores).
const DeviceSpec& v100();
const DeviceSpec& spec_for(Gpu gpu);
std::vector<Gpu> all_gpus();
std::string gpu_name(Gpu gpu);

}  // namespace cubie::sim
