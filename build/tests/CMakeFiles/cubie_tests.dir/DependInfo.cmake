
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/cubie_tests.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_fft_properties.cpp" "tests/CMakeFiles/cubie_tests.dir/test_fft_properties.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_fft_properties.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/cubie_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/cubie_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_half.cpp" "tests/CMakeFiles/cubie_tests.dir/test_half.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_half.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/cubie_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/cubie_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/cubie_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_mma.cpp" "tests/CMakeFiles/cubie_tests.dir/test_mma.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_mma.cpp.o.d"
  "/root/repo/tests/test_pca.cpp" "tests/CMakeFiles/cubie_tests.dir/test_pca.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_pca.cpp.o.d"
  "/root/repo/tests/test_pic_properties.cpp" "tests/CMakeFiles/cubie_tests.dir/test_pic_properties.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_pic_properties.cpp.o.d"
  "/root/repo/tests/test_profile_contracts.cpp" "tests/CMakeFiles/cubie_tests.dir/test_profile_contracts.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_profile_contracts.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/cubie_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scan_reduce_properties.cpp" "tests/CMakeFiles/cubie_tests.dir/test_scan_reduce_properties.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_scan_reduce_properties.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/cubie_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/cubie_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_sparse.cpp.o.d"
  "/root/repo/tests/test_stencil.cpp" "tests/CMakeFiles/cubie_tests.dir/test_stencil.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_stencil.cpp.o.d"
  "/root/repo/tests/test_stencil_properties.cpp" "tests/CMakeFiles/cubie_tests.dir/test_stencil_properties.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_stencil_properties.cpp.o.d"
  "/root/repo/tests/test_suitability.cpp" "tests/CMakeFiles/cubie_tests.dir/test_suitability.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_suitability.cpp.o.d"
  "/root/repo/tests/test_warp.cpp" "tests/CMakeFiles/cubie_tests.dir/test_warp.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_warp.cpp.o.d"
  "/root/repo/tests/test_workload_cases.cpp" "tests/CMakeFiles/cubie_tests.dir/test_workload_cases.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_workload_cases.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/cubie_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/cubie_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cubie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
