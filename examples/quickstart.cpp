// Quickstart: run one workload (GEMM) in all variants on one device model
// and print performance, energy, and numerical error - the minimal tour of
// the Cubie API.
//
//   $ ./quickstart            # GEMM on the H200 model
//   $ ./quickstart SpMV       # any of the ten workload names

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/kernels.hpp"
#include "sim/model.hpp"

#include <iostream>
#include <string>

int main(int argc, char** argv) {
  using namespace cubie;
  const std::string which = argc > 1 ? argv[1] : "GEMM";
  core::WorkloadPtr w = core::make_workload(which);
  if (!w) {
    std::cerr << "unknown workload '" << which << "'; available:";
    for (const auto& s : core::make_suite()) std::cerr << ' ' << s->name();
    std::cerr << '\n';
    return 1;
  }

  const sim::AnalyticModel model(sim::h200());
  const auto cases = w->cases(common::scale_divisor());
  const auto& tc_case = cases[w->representative_case()];
  std::cout << "Workload " << w->name() << " (Quadrant "
            << core::quadrant_name(w->quadrant()) << ", dwarf: " << w->dwarf()
            << ")\ncase " << tc_case.label << " on " << model.spec().name
            << "\n\n";

  const auto ref = w->reference(tc_case);
  common::Table t({"variant", "time (ms)", "useful GFLOP/s", "power (W)",
                   "EDP (J*s)", "avg err", "max err"});
  for (auto v : core::all_variants()) {
    if (v == core::Variant::Baseline && !w->has_baseline()) continue;
    if (v == core::Variant::CCE && !w->cce_distinct()) continue;
    const auto out = w->run(v, tc_case);
    const auto pred = model.predict(out.profile);
    const auto err = common::error_stats(out.values, ref);
    t.add_row({core::variant_name(v), common::fmt_double(pred.time_s * 1e3),
               common::fmt_double(out.profile.useful_flops / pred.time_s / 1e9, 1),
               common::fmt_double(pred.avg_power_w, 0),
               common::fmt_sci(pred.edp), common::fmt_sci(err.avg),
               common::fmt_sci(err.max)});
  }
  t.print(std::cout);
  std::cout << "\n(Performance numbers are analytic-model predictions for the "
               "device;\n errors are measured against the naive CPU serial "
               "reference.)\n";
  return 0;
}
