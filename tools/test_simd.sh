#!/usr/bin/env bash
# SIMD dispatch parity test, run from ctest:
#   test_simd.sh <cubie-binary> <bench_diff-binary>
#
# The SIMD MMA kernels promise bit-exactness against the scalar path, so a
# full `cubie check` conformance sweep must produce identical verdicts and
# identical numeric error records whichever table dispatch resolves. Also
# checks that `cubie list` surfaces the dispatch decision (the knob
# operators use to diagnose an unexpectedly scalar run).
set -eu

CUBIE="$1"
DIFF="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Dispatch visibility: the list footer names the active ISA, and forcing
# scalar through the environment is reported with its reason.
"$CUBIE" list | grep -q "^simd: "
CUBIE_FORCE_SCALAR=1 "$CUBIE" list \
  | grep -q "^simd: scalar (CUBIE_FORCE_SCALAR=1)"

# Representative conformance sweep under both dispatch modes. Both must
# PASS (exit 0) on their own.
CUBIE_FORCE_SCALAR=0 "$CUBIE" check --scale 16 --jobs 2 \
  --json "$WORK/auto.json" > /dev/null
CUBIE_FORCE_SCALAR=1 "$CUBIE" check --scale 16 --jobs 2 \
  --json "$WORK/scalar.json" > /dev/null

# The per-(workload, variant) error records (max_abs_err, max_ulp,
# violations, pass, ...) must agree exactly. Any strict change registers as
# "worse" in one of the two comparison directions, so bench_diff --tol 0
# both ways pins equality while staying agnostic to the report's
# engine-wall metadata.
"$DIFF" "$WORK/auto.json" "$WORK/scalar.json" --tol 0
"$DIFF" "$WORK/scalar.json" "$WORK/auto.json" --tol 0

echo "simd dispatch parity OK"
