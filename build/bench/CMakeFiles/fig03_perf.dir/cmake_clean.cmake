file(REMOVE_RECURSE
  "CMakeFiles/fig03_perf.dir/fig03_perf.cpp.o"
  "CMakeFiles/fig03_perf.dir/fig03_perf.cpp.o.d"
  "fig03_perf"
  "fig03_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
