#include "telemetry/history.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace cubie::telemetry {

using report::Json;

const double* HistoryEntry::get(const std::string& name) const {
  for (const auto& [k, v] : metrics) {
    if (k == name) return &v;
  }
  return nullptr;
}

HistoryEntry summarize(const report::MetricsReport& rep, std::string sha) {
  HistoryEntry e;
  e.sha = std::move(sha);
  e.tool = rep.tool;
  e.scale = rep.scale_divisor;
  e.records = rep.records.size();
  // Mean of every metric over the records that carry it, in first-seen
  // order so rerecording the same report is byte-stable.
  std::vector<std::pair<double, std::size_t>> acc;  // sum, count
  for (const auto& r : rep.records) {
    for (const auto& [name, value] : r.metrics) {
      if (!std::isfinite(value)) continue;
      std::size_t i = 0;
      for (; i < e.metrics.size(); ++i)
        if (e.metrics[i].first == name) break;
      if (i == e.metrics.size()) {
        e.metrics.emplace_back(name, 0.0);
        acc.emplace_back(0.0, 0);
      }
      acc[i].first += value;
      ++acc[i].second;
    }
  }
  for (std::size_t i = 0; i < e.metrics.size(); ++i) {
    e.metrics[i].second =
        acc[i].first / static_cast<double>(std::max<std::size_t>(1, acc[i].second));
  }
  return e;
}

Json to_json(const HistoryEntry& e) {
  Json j = Json::object();
  j["schema_version"] = Json::number(kHistorySchemaVersion);
  j["kind"] = Json::string("cubie-bench-history");
  j["sha"] = Json::string(e.sha);
  j["tool"] = Json::string(e.tool);
  j["scale"] = Json::number(e.scale);
  j["records"] = Json::number(static_cast<double>(e.records));
  Json m = Json::object();
  for (const auto& [k, v] : e.metrics) m[k] = Json::number(v);
  j["metrics"] = std::move(m);
  return j;
}

std::optional<HistoryEntry> entry_from_json(const Json& j,
                                            std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<HistoryEntry> {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("history entry is not an object");
  const Json* kind = j.find("kind");
  if (!kind || !kind->is_string() ||
      kind->as_string() != "cubie-bench-history")
    return fail("not a cubie-bench-history entry");
  const Json* sv = j.find("schema_version");
  if (!sv || !sv->is_number()) return fail("missing schema_version");
  if (static_cast<int>(sv->as_number()) > kHistorySchemaVersion)
    return fail("history schema_version " +
                std::to_string(static_cast<int>(sv->as_number())) +
                " is newer than supported " +
                std::to_string(kHistorySchemaVersion));
  HistoryEntry e;
  if (const Json* s = j.find("sha"); s && s->is_string())
    e.sha = s->as_string();
  if (const Json* t = j.find("tool"); t && t->is_string())
    e.tool = t->as_string();
  if (const Json* s = j.find("scale"); s && s->is_number())
    e.scale = static_cast<int>(s->as_number());
  if (const Json* r = j.find("records"); r && r->is_number())
    e.records = static_cast<std::size_t>(r->as_number());
  if (const Json* m = j.find("metrics"); m && m->is_object()) {
    for (const auto& [k, v] : m->members())
      if (v.is_number()) e.metrics.emplace_back(k, v.as_number());
  }
  return e;
}

bool append_entry(const std::string& path, const HistoryEntry& e,
                  std::string* error) {
  std::ofstream os(path, std::ios::app);
  if (!os) {
    if (error) *error = "cannot open " + path + " for append";
    return false;
  }
  os << to_json(e).dump(-1) << '\n';
  if (!os) {
    if (error) *error = "cannot write " + path;
    return false;
  }
  return true;
}

std::optional<std::vector<HistoryEntry>> load_history(const std::string& path,
                                                      std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::vector<HistoryEntry> entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string perr;
    const auto j = Json::parse(line, &perr);
    if (!j) {
      if (error)
        *error = path + ":" + std::to_string(lineno) + ": " + perr;
      return std::nullopt;
    }
    auto e = entry_from_json(*j, &perr);
    if (!e) {
      if (error)
        *error = path + ":" + std::to_string(lineno) + ": " + perr;
      return std::nullopt;
    }
    entries.push_back(std::move(*e));
  }
  return entries;
}

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

TrendReport trend(const std::vector<HistoryEntry>& entries, double tol,
                  const std::string& only_metric) {
  TrendReport rep;
  if (entries.empty()) return rep;
  const HistoryEntry& latest = entries.back();
  rep.tool = latest.tool;
  rep.sha = latest.sha;
  rep.scale = latest.scale;

  std::vector<const HistoryEntry*> priors;
  for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
    if (entries[i].tool == latest.tool && entries[i].scale == latest.scale)
      priors.push_back(&entries[i]);
  }
  rep.prior = priors.size();
  if (priors.empty()) return rep;

  for (const auto& [name, value] : latest.metrics) {
    if (!only_metric.empty() && name != only_metric) continue;
    std::vector<double> history;
    for (const HistoryEntry* p : priors) {
      if (const double* v = p->get(name); v && std::isfinite(*v))
        history.push_back(*v);
    }
    if (history.empty()) continue;  // metric is new: nothing to judge
    const double med = median(std::move(history));
    if (med == 0.0 || !std::isfinite(med) || !std::isfinite(value)) continue;
    TrendDelta d;
    d.metric = name;
    d.latest = value;
    d.median = med;
    const double delta = (value - med) / std::fabs(med);
    d.worse = report::lower_is_better(name) ? delta : -delta;
    d.regression = d.worse > tol;
    rep.deltas.push_back(std::move(d));
  }
  return rep;
}

}  // namespace cubie::telemetry
