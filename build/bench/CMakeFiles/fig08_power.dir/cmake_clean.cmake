file(REMOVE_RECURSE
  "CMakeFiles/fig08_power.dir/fig08_power.cpp.o"
  "CMakeFiles/fig08_power.dir/fig08_power.cpp.o.d"
  "fig08_power"
  "fig08_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
