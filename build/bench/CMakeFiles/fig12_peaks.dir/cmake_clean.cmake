file(REMOVE_RECURSE
  "CMakeFiles/fig12_peaks.dir/fig12_peaks.cpp.o"
  "CMakeFiles/fig12_peaks.dir/fig12_peaks.cpp.o.d"
  "fig12_peaks"
  "fig12_peaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
