// Ablation: algorithm-level MMU-suitability prediction (the paper's
// Section 4 open question, implemented in analysis/suitability.hpp).
// For each Cubie workload we write down the traits a compiler could see in
// the *untransformed* algorithm, ask the assessor for a quadrant and a
// speedup estimate, and compare against the measured Figure 4 factor on the
// H200 model.

#include "analysis/suitability.hpp"
#include "bench_util.hpp"

#include <iostream>

namespace {

using namespace cubie;

struct TraitRow {
  const char* workload;
  analysis::AlgorithmTraits traits;
};

// Traits of the natural (pre-MMA) algorithms. Sources in comments.
const TraitRow kTraits[] = {
    // GEMM: dense blocks everywhere, O(tile) reuse, streaming layout.
    {"GEMM", {30.0, 1.0, 1.0, 0.0, 32.0, 0.78, false}},
    // FFT: high AI but butterflies only partially fill MMA tiles (zeros in
    // the twiddle/radix matrices), streaming layout.
    {"FFT", {3.0, 0.35, 1.0, 0.0, 2.0, 0.78, false}},
    // Stencil: low AI, banded blocks are sparse inside tiles, grid layout.
    {"Stencil", {0.6, 0.6, 1.0, 0.0, 3.0, 0.62, false}},
    // Scan: one constant operand (U/SL/J), full outputs, streaming.
    {"Scan", {0.06, 1.0, 1.0, 1.0, 1.0, 0.60, false}},
    // Reduction: constant operands, single useful output element.
    {"Reduction", {0.12, 1.0, 0.12, 1.0, 1.0, 0.60, false}},
    // BFS: bitwise, baseline does scattered probes.
    {"BFS", {0.05, 1.0, 0.125, 0.0, 1.0, 0.30, true}},
    // GEMV: full input, diagonal-only output, decent baseline streaming.
    {"GEMV", {0.12, 1.0, 0.125, 0.0, 1.0, 0.78, false}},
    // SpMV: blocks are value-packed (full), diagonal output, irregular
    // baseline gathers.
    {"SpMV", {0.15, 0.9, 0.125, 0.0, 1.0, 0.45, false}},
    // SpGEMM: mBSR blocks fairly dense, half the output tiles useful,
    // hash-based baseline very irregular.
    {"SpGEMM", {0.5, 0.8, 0.5, 0.0, 2.0, 0.45, false}},
};

const char* plain_label(analysis::UtilizationQuadrant q) {
  switch (q) {
    case analysis::UtilizationQuadrant::I: return "I";
    case analysis::UtilizationQuadrant::II: return "II";
    case analysis::UtilizationQuadrant::III: return "III";
    case analysis::UtilizationQuadrant::IV: return "IV";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  auto bench = benchutil::bench_init(
      argc, argv, "ablation_suitability",
      "Ablation: algorithm-level MMU suitability vs measured (H200)");
  const auto& dev = sim::h200();
  const auto model = bench.model_for(dev);
  const int s = bench.scale;

  std::cout << "=== Ablation: algorithm-level MMU suitability vs measured "
               "(H200) ===\n\n";
  engine::Plan plan = engine::Plan::representative(s)
                          .with_variants({core::Variant::TC,
                                          core::Variant::Baseline})
                          .with_gpus({sim::Gpu::H200});
  for (const auto& row : kTraits) plan.workloads.push_back(row.workload);
  bench.warm(plan);

  common::Table t({"workload", "predicted quadrant", "actual", "est speedup",
                   "measured", "verdict ok?"});
  int correct_quadrant = 0, correct_verdict = 0, n_rows = 0;
  for (const auto& row : kTraits) {
    const auto* w = bench.workload(row.workload);
    const auto assessment = analysis::assess_mmu_suitability(row.traits, dev);

    // Measured TC-vs-baseline factor (representative case).
    const auto tc_case = w->cases(s)[w->representative_case()];
    const double t_tc =
        model->predict(bench.run(*w, core::Variant::TC, tc_case).profile).time_s;
    const double t_base =
        model->predict(bench.run(*w, core::Variant::Baseline, tc_case).profile)
            .time_s;
    const double measured = t_base / t_tc;

    const std::string predicted_q = plain_label(assessment.quadrant);
    const std::string actual_q = core::quadrant_name(w->quadrant());
    const bool q_ok = predicted_q == actual_q;
    const bool verdict_ok = assessment.recommend_mmu == (measured > 1.1);
    correct_quadrant += q_ok;
    correct_verdict += verdict_ok;
    ++n_rows;
    t.add_row({row.workload, predicted_q, actual_q,
               common::fmt_double(assessment.estimated_speedup, 2) + "x",
               common::fmt_double(measured, 2) + "x",
               verdict_ok ? "yes" : "NO"});
    auto& rec = bench.record(row.workload, "", "H200", tc_case.label);
    rec.set("estimated_speedup", assessment.estimated_speedup);
    rec.set("measured_speedup", measured);
    rec.set("quadrant_ok", q_ok ? 1.0 : 0.0);
    rec.set("verdict_ok", verdict_ok ? 1.0 : 0.0);
  }
  t.print(std::cout);
  bench.capture("suitability", t);
  std::cout << "\nQuadrant prediction: " << correct_quadrant << "/" << n_rows
            << "; accelerate-or-not verdict: " << correct_verdict << "/"
            << n_rows << "\n"
            << "(PiC omitted: no baseline to compare against.)\n";
  auto& summary = bench.record("suitability", "", "H200", "summary");
  summary.set("quadrant_correct", correct_quadrant);
  summary.set("verdict_correct", correct_verdict);
  summary.set("n", n_rows);
  return bench.finish();
}
