// bench_diff: compare two Cubie JSON metric reports and flag regressions.
//
//   bench_diff <baseline.json> <candidate.json> [--tol FRAC] [--metric NAME]
//
// Records are matched by (workload, variant, gpu, case). For every metric
// present in both, the relative change is evaluated against the tolerance
// in the metric's "good" direction: time/energy/error-like metrics regress
// when they grow, throughput/speedup-like metrics regress when they shrink.
// Exit status: 0 = no regressions, 1 = at least one regression beyond
// tolerance, 2 = usage or parse failure. Improvements and new/missing
// records are reported but never fail the comparison.

#include "common/report.hpp"
#include "common/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace cubie;

int usage() {
  std::cerr << "usage: bench_diff <baseline.json> <candidate.json> "
               "[--tol FRAC] [--metric NAME]\n";
  return 2;
}

struct Change {
  std::string key;
  std::string metric;
  double base = 0.0;
  double cand = 0.0;
  double rel = 0.0;  // signed relative change toward "worse"
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string base_path, cand_path, only_metric;
  double tol = 0.10;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tol") {
      if (i + 1 >= args.size()) return usage();
      tol = std::atof(args[++i].c_str());
    } else if (args[i] == "--metric") {
      if (i + 1 >= args.size()) return usage();
      only_metric = args[++i];
    } else if (args[i] == "--help" || args[i] == "-h") {
      usage();
      return 0;
    } else if (base_path.empty()) {
      base_path = args[i];
    } else if (cand_path.empty()) {
      cand_path = args[i];
    } else {
      return usage();
    }
  }
  if (base_path.empty() || cand_path.empty()) return usage();

  std::string err;
  const auto base = report::MetricsReport::read_file(base_path, &err);
  if (!base) {
    std::cerr << "bench_diff: " << base_path << ": " << err << '\n';
    return 2;
  }
  const auto cand = report::MetricsReport::read_file(cand_path, &err);
  if (!cand) {
    std::cerr << "bench_diff: " << cand_path << ": " << err << '\n';
    return 2;
  }

  std::vector<Change> regressions, improvements;
  Change max_change;
  double max_abs_worse = -1.0;
  std::size_t compared = 0, missing = 0;
  for (const auto& b : base->records) {
    const report::MetricRecord* c = nullptr;
    for (const auto& r : cand->records) {
      if (r.key() == b.key()) {
        c = &r;
        break;
      }
    }
    if (!c) {
      ++missing;
      std::cout << "  [missing] " << b.key() << " not in candidate\n";
      continue;
    }
    for (const auto& [name, bv] : b.metrics) {
      if (!only_metric.empty() && name != only_metric) continue;
      const auto cv = c->get(name);
      if (!cv) {
        ++missing;
        continue;
      }
      ++compared;
      if (bv == 0.0 || !std::isfinite(bv) || !std::isfinite(*cv)) continue;
      const double delta = (*cv - bv) / std::fabs(bv);
      // Positive `worse` means the candidate moved in the bad direction
      // (direction table shared with `cubie trend` via common/report).
      const double worse = report::lower_is_better(name) ? delta : -delta;
      if (std::fabs(worse) > max_abs_worse) {
        max_abs_worse = std::fabs(worse);
        max_change = {b.key(), name, bv, *cv, worse};
      }
      if (worse > tol) {
        regressions.push_back({b.key(), name, bv, *cv, worse});
      } else if (worse < -tol) {
        improvements.push_back({b.key(), name, bv, *cv, worse});
      }
    }
  }

  auto print = [](const char* tag, const std::vector<Change>& list) {
    for (const auto& ch : list) {
      std::cout << "  [" << tag << "] " << ch.key << " :: " << ch.metric
                << "  " << common::fmt_sci(ch.base) << " -> "
                << common::fmt_sci(ch.cand) << "  ("
                << common::fmt_double(ch.rel * 100.0, 1) << "% worse)\n";
    }
  };
  std::cout << "bench_diff: " << base_path << " vs " << cand_path << " (tol "
            << common::fmt_double(tol * 100.0, 1) << "%)\n";
  print("REGRESSION", regressions);
  print("improved", improvements);
  std::cout << compared << " metrics compared, " << regressions.size()
            << " regression(s), " << improvements.size()
            << " improvement(s), " << missing << " missing\n";
  if (regressions.empty()) {
    // One-line success summary: the largest observed move (either
    // direction), so a quiet diff still says how quiet it was.
    if (max_abs_worse >= 0.0) {
      std::cout << "OK: max |delta| "
                << common::fmt_double(max_abs_worse * 100.0, 2) << "% ("
                << max_change.key << " :: " << max_change.metric
                << ") within tol "
                << common::fmt_double(tol * 100.0, 1) << "%\n";
    } else {
      std::cout << "OK: no overlapping finite metrics to compare\n";
    }
  }
  return regressions.empty() ? 0 : 1;
}
