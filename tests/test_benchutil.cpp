// bench_util contracts: the per-workload performance metric reported in
// Figure 3. BFS has no floating-point work, so its "useful_flops" counter
// carries traversed edges and the reported rate is TEPS, not FLOP/s - this
// pins the workload-aware branch of benchutil::perf_metric.

#include "bench_util.hpp"

#include <gtest/gtest.h>

namespace cubie {
namespace {

TEST(BenchUtil, BfsMetricIsTraversedEdgesPerSecond) {
  const auto w = core::make_workload("BFS");
  ASSERT_FALSE(w->is_floating_point());
  const auto tc = w->cases(16)[w->representative_case()];
  const auto out = w->run(core::Variant::TC, tc);
  // BFS counts one useful "flop" per traversed edge, but executes no FP work.
  EXPECT_GT(out.profile.useful_flops, 0.0);
  EXPECT_DOUBLE_EQ(out.profile.tc_flops, 0.0);
  EXPECT_DOUBLE_EQ(out.profile.cc_flops, 0.0);

  const double rate = benchutil::perf_metric(*w, out.profile, 2.0);
  EXPECT_DOUBLE_EQ(rate, out.profile.useful_flops / 2.0);
  EXPECT_EQ(benchutil::perf_unit(*w), "GTEPS");
  EXPECT_EQ(benchutil::perf_metric_name(*w), "gteps");
}

TEST(BenchUtil, FpMetricIsUsefulFlopsPerSecond) {
  const auto w = core::make_workload("GEMM");
  ASSERT_TRUE(w->is_floating_point());
  const auto tc = w->cases(16)[0];
  const auto out = w->run(core::Variant::TC, tc);
  const double rate = benchutil::perf_metric(*w, out.profile, 0.5);
  EXPECT_DOUBLE_EQ(rate, out.profile.useful_flops / 0.5);
  EXPECT_EQ(benchutil::perf_unit(*w), "GFLOP/s");
  EXPECT_EQ(benchutil::perf_metric_name(*w), "gflops");
}

TEST(BenchUtil, ZeroTimeYieldsZeroRate) {
  const auto w = core::make_workload("GEMM");
  sim::KernelProfile prof;
  prof.useful_flops = 100.0;
  EXPECT_DOUBLE_EQ(benchutil::perf_metric(*w, prof, 0.0), 0.0);
}

}  // namespace
}  // namespace cubie
