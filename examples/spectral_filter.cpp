// Spectral low-pass filtering with the FFT substrate: synthesize a noisy
// signal, transform, zero the high-frequency band, inverse-transform, and
// report the noise suppression - the classic FFT application the tcFFT
// workload accelerates.
//
//   $ ./spectral_filter [n] [cutoff-fraction]

#include "common/rng.hpp"
#include "common/table.hpp"
#include "fft/fft.hpp"

#include <cmath>
#include <iostream>
#include <numbers>

int main(int argc, char** argv) {
  using namespace cubie;
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4096;
  const double cutoff = argc > 2 ? std::atof(argv[2]) : 0.05;
  if (!fft::is_pow2(n)) {
    std::cerr << "n must be a power of two\n";
    return 1;
  }

  // Clean signal: three low-frequency tones. Noise: white, via the LCG.
  common::Lcg rng(99);
  std::vector<fft::cplx> clean(n), noisy(n);
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    const double v = std::sin(kTwoPi * 5.0 * t) +
                     0.6 * std::sin(kTwoPi * 17.0 * t) +
                     0.3 * std::cos(kTwoPi * 31.0 * t);
    clean[i] = v;
    noisy[i] = v + 0.8 * rng.next_linpack();
  }

  // Forward transform, band-limit, inverse transform.
  auto spectrum = fft::fft_serial(noisy);
  const std::size_t keep = static_cast<std::size_t>(cutoff * static_cast<double>(n));
  for (std::size_t k = keep; k < n - keep; ++k) spectrum[k] = 0.0;
  const auto filtered = fft::ifft_serial(spectrum);

  auto rms_error = [&](const std::vector<fft::cplx>& sig) {
    double e = 0.0;
    for (std::size_t i = 0; i < n; ++i) e += std::norm(sig[i] - clean[i]);
    return std::sqrt(e / static_cast<double>(n));
  };
  const double before = rms_error(noisy);
  const double after = rms_error(filtered);

  std::cout << "Spectral low-pass filter, n = " << n << ", cutoff "
            << common::fmt_double(cutoff * 100.0, 1) << "% of band\n"
            << "  RMS error vs clean signal: " << common::fmt_double(before, 4)
            << " -> " << common::fmt_double(after, 4) << " ("
            << common::fmt_double(before / after, 1)
            << "x noise suppression)\n";

  // Round-trip sanity: inverse(forward(x)) == x.
  const auto rt = fft::ifft_serial(fft::fft_serial(noisy));
  double rt_err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    rt_err = std::max(rt_err, std::abs(rt[i] - noisy[i]));
  std::cout << "  FFT round-trip max error: " << common::fmt_sci(rt_err)
            << "\n";
  return after < before ? 0 : 1;
}
