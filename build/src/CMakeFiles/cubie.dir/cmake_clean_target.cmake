file(REMOVE_RECURSE
  "libcubie.a"
)
