// Device model properties: bottleneck selection, monotonicity, power bounds,
// EDP definition, power-trace synthesis, roofline geometry.

#include "sim/calibration.hpp"
#include "sim/device.hpp"
#include "sim/model.hpp"
#include "sim/power.hpp"
#include "sim/roofline.hpp"

#include <gtest/gtest.h>

namespace cubie {
namespace {

using DeviceModel = sim::AnalyticModel;
using sim::KernelProfile;

KernelProfile saturated_profile() {
  KernelProfile p;
  p.threads = 1e6;  // above saturation on every device
  p.launches = 1;
  return p;
}

TEST(DeviceSpecs, MatchPaperTable5) {
  EXPECT_DOUBLE_EQ(sim::a100().fp64_tc_peak, 19.5e12);
  EXPECT_DOUBLE_EQ(sim::a100().fp64_cc_peak, 9.7e12);
  EXPECT_DOUBLE_EQ(sim::a100().dram_bw, 1.55e12);
  EXPECT_DOUBLE_EQ(sim::h200().fp64_tc_peak, 66.9e12);
  EXPECT_DOUBLE_EQ(sim::h200().fp64_cc_peak, 33.5e12);
  EXPECT_DOUBLE_EQ(sim::h200().dram_bw, 4.0e12);
  EXPECT_DOUBLE_EQ(sim::h200().tdp_w, 750.0);
  EXPECT_DOUBLE_EQ(sim::b200().fp64_tc_peak, 40.0e12);
  EXPECT_DOUBLE_EQ(sim::b200().fp64_cc_peak, 40.0e12);
  EXPECT_DOUBLE_EQ(sim::b200().dram_bw, 8.0e12);
}

TEST(DeviceModel, ComputeBoundKernelPicksTensorPipe) {
  auto p = saturated_profile();
  p.tc_flops = 1e12;
  p.dram_bytes = 1e6;
  const auto pred = DeviceModel(sim::h200()).predict(p);
  EXPECT_EQ(pred.bound, sim::Bottleneck::TensorPipe);
  EXPECT_GT(pred.time_s, 0.0);
}

TEST(DeviceModel, MemoryBoundKernelPicksDram) {
  auto p = saturated_profile();
  p.cc_flops = 1e6;
  p.dram_bytes = 1e10;
  const auto pred = DeviceModel(sim::h200()).predict(p);
  EXPECT_EQ(pred.bound, sim::Bottleneck::Dram);
}

TEST(DeviceModel, TimeMonotoneInWork) {
  auto p1 = saturated_profile();
  p1.tc_flops = 1e12;
  auto p2 = p1;
  p2.tc_flops = 2e12;
  const DeviceModel m(sim::a100());
  EXPECT_GT(m.predict(p2).time_s, m.predict(p1).time_s);
}

TEST(DeviceModel, SamePipeWorkFasterOnTensor) {
  // Identical FLOPs run ~2x faster on the H200 tensor pipe than CUDA pipe.
  auto tc = saturated_profile();
  tc.tc_flops = 1e12;
  auto cc = saturated_profile();
  cc.cc_flops = 1e12;
  const DeviceModel m(sim::h200());
  const double ratio = m.predict(cc).time_s / m.predict(tc).time_s;
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(DeviceModel, PowerNeverExceedsTdp) {
  auto p = saturated_profile();
  p.tc_flops = 1e13;
  p.cc_flops = 1e13;
  p.dram_bytes = 1e12;
  for (auto gpu : sim::all_gpus()) {
    const auto pred = DeviceModel(sim::spec_for(gpu)).predict(p);
    EXPECT_LE(pred.avg_power_w, sim::spec_for(gpu).tdp_w);
    EXPECT_GE(pred.avg_power_w, sim::spec_for(gpu).idle_w);
  }
}

TEST(DeviceModel, EdpIsPowerTimesTimeSquared) {
  auto p = saturated_profile();
  p.tc_flops = 5e11;
  p.dram_bytes = 1e9;
  const auto pred = DeviceModel(sim::h200()).predict(p);
  EXPECT_NEAR(pred.edp, pred.avg_power_w * pred.time_s * pred.time_s,
              1e-12 * pred.edp);
  EXPECT_NEAR(pred.energy_j, pred.avg_power_w * pred.time_s,
              1e-12 * pred.energy_j);
}

TEST(DeviceModel, LaunchOverheadDominatesTinyKernels) {
  KernelProfile p;
  p.cc_flops = 100.0;
  p.dram_bytes = 100.0;
  p.threads = 32;
  p.launches = 1;
  const auto pred = DeviceModel(sim::h200()).predict(p);
  EXPECT_EQ(pred.bound, sim::Bottleneck::Launch);
  EXPECT_GE(pred.time_s, sim::h200().launch_overhead_s);
}

TEST(DeviceModel, LowOccupancySlowsExecution) {
  auto p_full = saturated_profile();
  p_full.tc_flops = 1e11;
  auto p_small = p_full;
  p_small.threads = 1024;  // far below saturation
  const DeviceModel m(sim::b200());
  EXPECT_GT(m.predict(p_small).time_s, m.predict(p_full).time_s);
}

TEST(DeviceModel, IssueBoundWhenInstructionsDominate)
{
  auto p = saturated_profile();
  p.cc_flops = 1.0;
  p.warp_instructions = 1e12;
  const auto pred = DeviceModel(sim::a100()).predict(p);
  EXPECT_EQ(pred.bound, sim::Bottleneck::Issue);
}

TEST(PowerTrace, RampsToSteadyStateAndIntegrates) {
  auto p = saturated_profile();
  p.tc_flops = 1e12;
  p.dram_bytes = 1e10;
  const auto pred = DeviceModel(sim::h200()).predict(p);
  sim::PowerTraceOptions opts;
  opts.duration_s = 5.0;
  const auto trace = sim::synthesize_power_trace(sim::h200(), pred, opts);
  ASSERT_GT(trace.size(), 50u);
  // Starts near idle, ends near steady state.
  EXPECT_LT(trace.front().watts, pred.avg_power_w * 0.5);
  EXPECT_NEAR(trace.back().watts, pred.avg_power_w,
              pred.avg_power_w * 0.1);
  // Energy integral is close to steady power * duration (ramp makes it less).
  const double e = sim::trace_energy_j(trace);
  EXPECT_LT(e, pred.avg_power_w * opts.duration_s * 1.05);
  EXPECT_GT(e, pred.avg_power_w * opts.duration_s * 0.7);
  // Never exceeds TDP or goes below idle.
  for (const auto& s : trace) {
    EXPECT_LE(s.watts, sim::h200().tdp_w);
    EXPECT_GE(s.watts, sim::h200().idle_w);
  }
}

TEST(Roofline, RidgeAndCeilings) {
  const sim::Roofline r(sim::h200());
  const double ridge = r.ridge_ai();
  EXPECT_NEAR(ridge, 66.9e12 / 4.0e12, 1e-9);
  // Below the ridge the roof is bandwidth; above, compute.
  EXPECT_DOUBLE_EQ(r.attainable(ridge / 2.0), ridge / 2.0 * 4.0e12);
  EXPECT_DOUBLE_EQ(r.attainable(ridge * 10.0), 66.9e12);
  EXPECT_GT(r.l1_roof(1.0), r.dram_roof(1.0));  // L1 above DRAM
}

TEST(Roofline, AchievedNeverAboveAttainableForModeledKernels) {
  auto p = saturated_profile();
  p.tc_flops = 1e12;
  p.useful_flops = 1e12;
  p.dram_bytes = 1e10;
  const DeviceModel m(sim::h200());
  const auto pred = m.predict(p);
  const auto pt = sim::Roofline(sim::h200()).point("x", p, pred);
  EXPECT_LE(pt.achieved_flops, pt.attainable_flops * 1.0 + 1e-6);
}

TEST(Profile, ArithmeticIntensity) {
  KernelProfile p;
  p.useful_flops = 100.0;
  p.dram_bytes = 50.0;
  EXPECT_DOUBLE_EQ(p.arithmetic_intensity(), 2.0);
  KernelProfile zero;
  EXPECT_EQ(zero.arithmetic_intensity(), 0.0);
}

TEST(Profile, AccumulationOperator) {
  KernelProfile a, b;
  a.tc_flops = 1.0;
  a.launches = 1;
  b.tc_flops = 2.0;
  b.dram_bytes = 8.0;
  b.launches = 2;
  a += b;
  EXPECT_DOUBLE_EQ(a.tc_flops, 3.0);
  EXPECT_DOUBLE_EQ(a.dram_bytes, 8.0);
  EXPECT_EQ(a.launches, 3);
}

}  // namespace
}  // namespace cubie
