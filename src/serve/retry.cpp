#include "serve/retry.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace cubie::serve {

namespace {

double default_uniform() {
  thread_local std::mt19937_64 eng{std::random_device{}()};
  return std::uniform_real_distribution<double>(0.0, 1.0)(eng);
}

}  // namespace

RetrySchedule::RetrySchedule(RetryPolicy policy, Rng rng)
    : policy_(policy), rng_(std::move(rng)) {
  if (!rng_) rng_ = default_uniform;
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  if (policy_.base_ms < 0.0) policy_.base_ms = 0.0;
  if (policy_.multiplier < 1.0) policy_.multiplier = 1.0;
  if (policy_.cap_ms < policy_.base_ms) policy_.cap_ms = policy_.base_ms;
}

std::optional<double> RetrySchedule::next_delay_ms(double elapsed_ms) {
  if (attempt_ >= policy_.max_attempts) return std::nullopt;
  const int retries_done = attempt_ - 1;
  const double raw = std::min(
      policy_.cap_ms,
      policy_.base_ms * std::pow(policy_.multiplier, retries_done));
  const double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  const double delay = raw * (1.0 - jitter * rng_());
  if (policy_.deadline_ms > 0.0 &&
      elapsed_ms + delay >= policy_.deadline_ms)
    return std::nullopt;
  ++attempt_;
  return delay;
}

bool retryable_error_code(const std::string& code) {
  return code == "overloaded";
}

}  // namespace cubie::serve
