#pragma once
// Power-trace synthesis for Figure 8. The paper samples instantaneous power
// via NVML while each kernel runs in a loop; here the trace is synthesized
// from the modeled steady-state power with a thermal ramp at kernel start /
// end and a small deterministic ripple, which is what NVML traces of looped
// kernels look like in practice.

#include "sim/model.hpp"

#include <vector>

namespace cubie::sim {

struct PowerSample {
  double t_s = 0.0;
  double watts = 0.0;
};

struct PowerTraceOptions {
  double duration_s = 5.0;   // looped-execution window being sampled
  double dt_s = 0.05;        // NVML sampling period
  double ramp_s = 0.4;       // exponential thermal ramp time constant
  double ripple_frac = 0.03; // deterministic ripple amplitude (fraction)
};

// Synthesize the power-vs-time curve for a kernel whose steady-state power
// is `pred.avg_power_w` on device `spec`, executed in a loop for
// opts.duration_s seconds.
std::vector<PowerSample> synthesize_power_trace(const DeviceSpec& spec,
                                                const Prediction& pred,
                                                const PowerTraceOptions& opts);

// Integrate a trace to energy (trapezoidal), used to cross-check EDP.
double trace_energy_j(const std::vector<PowerSample>& trace);

}  // namespace cubie::sim
