# Empty compiler generated dependencies file for fig03_perf.
# This may be replaced when dependencies are built.
